//! Initial (reconfiguration-oblivious) schedules and timed schedules.
//!
//! The prefetch problem of the paper starts from "an initial subtask schedule
//! that neglects the reconfiguration latency": an assignment of every subtask
//! to a processing element (an abstract DRHW tile slot or an ISP) plus an
//! execution order on every PE. [`InitialSchedule`] captures exactly that
//! pair; start times are *derived*, not stored, because they change once the
//! loads are inserted.
//!
//! [`TimedSchedule`] is the result of actually timing a schedule — with or
//! without configuration loads — and is what overhead numbers are computed
//! from.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::analysis::GraphAnalysis;
use crate::error::ModelError;
use crate::graph::SubtaskGraph;
use crate::ids::{PeAssignment, SubtaskId, TileSlot};
use crate::time::Time;

/// An assignment of subtasks to processing elements plus a per-PE execution
/// order, produced by a scheduler that ignores reconfiguration latency.
///
/// # Examples
///
/// ```
/// use drhw_model::{ConfigId, InitialSchedule, PeAssignment, Subtask, SubtaskGraph, TileSlot, Time};
///
/// # fn main() -> Result<(), drhw_model::ModelError> {
/// let mut g = SubtaskGraph::new("pair");
/// let a = g.add_subtask(Subtask::new("a", Time::from_millis(5), ConfigId::new(0)));
/// let b = g.add_subtask(Subtask::new("b", Time::from_millis(5), ConfigId::new(1)));
/// g.add_dependency(a, b)?;
/// let schedule = InitialSchedule::from_assignment(
///     &g,
///     vec![PeAssignment::Tile(TileSlot::new(0)), PeAssignment::Tile(TileSlot::new(1))],
/// )?;
/// assert_eq!(schedule.slot_count(), 2);
/// let timed = schedule.ideal_timing(&g)?;
/// assert_eq!(timed.makespan(), Time::from_millis(10));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InitialSchedule {
    assignment: Vec<PeAssignment>,
    pe_order: BTreeMap<PeAssignment, Vec<SubtaskId>>,
    slot_count: usize,
}

impl InitialSchedule {
    /// Builds a schedule from an assignment, ordering the subtasks sharing a
    /// PE by increasing ALAP start time (ties broken by id).
    ///
    /// This is the natural order a list scheduler that ignores
    /// reconfiguration latency would produce, and it is always consistent with
    /// the precedence constraints.
    ///
    /// # Errors
    ///
    /// Returns an error if the assignment length does not match the graph, if
    /// a subtask is mapped on the wrong PE class, or if the graph is invalid.
    pub fn from_assignment(
        graph: &SubtaskGraph,
        assignment: Vec<PeAssignment>,
    ) -> Result<Self, ModelError> {
        let analysis = GraphAnalysis::new(graph)?;
        Self::check_assignment(graph, &assignment)?;
        let mut pe_order: BTreeMap<PeAssignment, Vec<SubtaskId>> = BTreeMap::new();
        for (idx, &pe) in assignment.iter().enumerate() {
            pe_order.entry(pe).or_default().push(SubtaskId::new(idx));
        }
        for order in pe_order.values_mut() {
            order.sort_by(|a, b| {
                analysis
                    .alap_start(*a)
                    .cmp(&analysis.alap_start(*b))
                    .then_with(|| analysis.asap_start(*a).cmp(&analysis.asap_start(*b)))
                    .then(a.index().cmp(&b.index()))
            });
        }
        let schedule = Self::assemble(assignment, pe_order);
        schedule.check_consistency(graph)?;
        Ok(schedule)
    }

    /// Builds the fully parallel schedule: every DRHW subtask gets its own
    /// abstract tile slot and every ISP subtask goes to ISP 0.
    ///
    /// This mirrors how the ICN platform model maps relocatable subtasks onto
    /// tiles and is the assignment used for the per-task characterisation of
    /// the paper's Table 1.
    ///
    /// # Errors
    ///
    /// Propagates graph validation errors.
    pub fn fully_parallel(graph: &SubtaskGraph) -> Result<Self, ModelError> {
        let mut next_slot = 0usize;
        let assignment = graph
            .iter()
            .map(|(_, s)| {
                if s.pe_class() == crate::ids::PeClass::Drhw {
                    let slot = TileSlot::new(next_slot);
                    next_slot += 1;
                    PeAssignment::Tile(slot)
                } else {
                    PeAssignment::Isp(crate::ids::IspId::new(0))
                }
            })
            .collect();
        Self::from_assignment(graph, assignment)
    }

    /// Builds a schedule from an assignment and explicit per-PE orders.
    ///
    /// # Errors
    ///
    /// Returns an error if the orders do not cover every subtask exactly once,
    /// reference a different PE than the assignment, or contradict the
    /// precedence constraints (combined precedence + order must be acyclic).
    pub fn with_order(
        graph: &SubtaskGraph,
        assignment: Vec<PeAssignment>,
        pe_order: BTreeMap<PeAssignment, Vec<SubtaskId>>,
    ) -> Result<Self, ModelError> {
        Self::check_assignment(graph, &assignment)?;
        let mut seen = vec![false; graph.len()];
        for (pe, order) in &pe_order {
            for &id in order {
                if id.index() >= graph.len() {
                    return Err(ModelError::UnknownSubtask {
                        id,
                        len: graph.len(),
                    });
                }
                if assignment[id.index()] != *pe || seen[id.index()] {
                    return Err(ModelError::IncompleteSchedule { id });
                }
                seen[id.index()] = true;
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(ModelError::IncompleteSchedule {
                id: SubtaskId::new(missing),
            });
        }
        let schedule = Self::assemble(assignment, pe_order);
        schedule.check_consistency(graph)?;
        Ok(schedule)
    }

    fn assemble(
        assignment: Vec<PeAssignment>,
        pe_order: BTreeMap<PeAssignment, Vec<SubtaskId>>,
    ) -> Self {
        let slot_count = assignment
            .iter()
            .filter_map(|pe| pe.tile_slot())
            .map(|slot| slot.index() + 1)
            .max()
            .unwrap_or(0);
        InitialSchedule {
            assignment,
            pe_order,
            slot_count,
        }
    }

    fn check_assignment(
        graph: &SubtaskGraph,
        assignment: &[PeAssignment],
    ) -> Result<(), ModelError> {
        if assignment.len() != graph.len() {
            let id = SubtaskId::new(assignment.len().min(graph.len()));
            return Err(ModelError::IncompleteSchedule { id });
        }
        for (idx, pe) in assignment.iter().enumerate() {
            let id = SubtaskId::new(idx);
            if graph.subtask(id).pe_class() != pe.class() {
                return Err(ModelError::PeClassMismatch { id });
            }
        }
        Ok(())
    }

    /// Verifies that the per-PE order combined with the precedence edges is
    /// acyclic, i.e. the schedule is executable.
    fn check_consistency(&self, graph: &SubtaskGraph) -> Result<(), ModelError> {
        // Kahn's algorithm over the combined relation.
        let n = graph.len();
        let mut extra_succs: Vec<Vec<SubtaskId>> = vec![Vec::new(); n];
        for order in self.pe_order.values() {
            for pair in order.windows(2) {
                extra_succs[pair[0].index()].push(pair[1]);
            }
        }
        let mut in_degree = vec![0usize; n];
        for id in graph.ids() {
            for &succ in graph.successors(id) {
                in_degree[succ.index()] += 1;
            }
            for &succ in &extra_succs[id.index()] {
                in_degree[succ.index()] += 1;
            }
        }
        let mut stack: Vec<usize> = (0..n).filter(|&i| in_degree[i] == 0).collect();
        let mut visited = 0usize;
        while let Some(i) = stack.pop() {
            visited += 1;
            let id = SubtaskId::new(i);
            for &succ in graph.successors(id).iter().chain(&extra_succs[i]) {
                in_degree[succ.index()] -= 1;
                if in_degree[succ.index()] == 0 {
                    stack.push(succ.index());
                }
            }
        }
        if visited == n {
            Ok(())
        } else {
            let id = SubtaskId::new(in_degree.iter().position(|&d| d > 0).unwrap_or(0));
            Err(ModelError::InconsistentOrder { id })
        }
    }

    /// Processing element assigned to a subtask.
    pub fn assignment(&self, id: SubtaskId) -> PeAssignment {
        self.assignment[id.index()]
    }

    /// All assignments, indexed by subtask id.
    pub fn assignments(&self) -> &[PeAssignment] {
        &self.assignment
    }

    /// Number of distinct abstract tile slots used (the schedule needs at
    /// least this many physical tiles).
    pub fn slot_count(&self) -> usize {
        self.slot_count
    }

    /// Processing elements used by this schedule together with their execution
    /// order.
    pub fn pe_order(&self) -> &BTreeMap<PeAssignment, Vec<SubtaskId>> {
        &self.pe_order
    }

    /// Execution order on a given PE (empty if the PE is unused).
    pub fn subtasks_on(&self, pe: PeAssignment) -> &[SubtaskId] {
        self.pe_order.get(&pe).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The subtask scheduled immediately before `id` on the same PE, if any.
    ///
    /// The reconfiguration of `id`'s tile cannot start before this subtask
    /// finishes (loading would destroy the configuration still in use).
    pub fn predecessor_on_pe(&self, id: SubtaskId) -> Option<SubtaskId> {
        let order = self.subtasks_on(self.assignment(id));
        let pos = order.iter().position(|&s| s == id)?;
        if pos == 0 {
            None
        } else {
            Some(order[pos - 1])
        }
    }

    /// The subtask scheduled immediately after `id` on the same PE, if any.
    pub fn successor_on_pe(&self, id: SubtaskId) -> Option<SubtaskId> {
        let order = self.subtasks_on(self.assignment(id));
        let pos = order.iter().position(|&s| s == id)?;
        order.get(pos + 1).copied()
    }

    /// The first subtask executed on an abstract tile slot, if the slot is used.
    ///
    /// Only this subtask can reuse a configuration left on the physical tile by
    /// a *previous* task; later subtasks on the slot find whatever the slot's
    /// own loads put there.
    pub fn first_on_slot(&self, slot: TileSlot) -> Option<SubtaskId> {
        self.subtasks_on(PeAssignment::Tile(slot)).first().copied()
    }

    /// All subtasks assigned to DRHW slots, in (slot, position) order.
    pub fn drhw_subtasks(&self) -> Vec<SubtaskId> {
        (0..self.slot_count)
            .flat_map(|s| {
                self.subtasks_on(PeAssignment::Tile(TileSlot::new(s)))
                    .iter()
                    .copied()
            })
            .collect()
    }

    /// Times this schedule assuming zero reconfiguration latency (the "ideal"
    /// execution the paper measures overhead against).
    ///
    /// # Errors
    ///
    /// Propagates graph validation errors.
    pub fn ideal_timing(&self, graph: &SubtaskGraph) -> Result<TimedSchedule, ModelError> {
        graph.validate()?;
        // Combined precedence (graph + per-PE order) is acyclic by
        // construction, so a longest-path sweep over the combined relation
        // yields the start times directly.
        let n = graph.len();
        let mut start = vec![Time::ZERO; n];
        let mut finish = vec![Time::ZERO; n];
        let order = self.combined_topological_order(graph)?;
        for &id in &order {
            let mut ready = Time::ZERO;
            for &p in graph.predecessors(id) {
                ready = ready.max(finish[p.index()]);
            }
            if let Some(prev) = self.predecessor_on_pe(id) {
                ready = ready.max(finish[prev.index()]);
            }
            start[id.index()] = ready;
            finish[id.index()] = ready + graph.subtask(id).exec_time();
        }
        let makespan = finish.iter().copied().max().unwrap_or(Time::ZERO);
        let executions = (0..n)
            .map(|i| {
                let id = SubtaskId::new(i);
                ExecutionWindow {
                    subtask: id,
                    pe: self.assignment(id),
                    start: start[i],
                    finish: finish[i],
                }
            })
            .collect();
        Ok(TimedSchedule {
            executions,
            loads: Vec::new(),
            makespan,
        })
    }

    /// Topological order of the combined relation (precedence + per-PE order).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InconsistentOrder`] if the combination is cyclic.
    pub fn combined_topological_order(
        &self,
        graph: &SubtaskGraph,
    ) -> Result<Vec<SubtaskId>, ModelError> {
        let n = graph.len();
        let mut extra_succs: Vec<Vec<SubtaskId>> = vec![Vec::new(); n];
        for order in self.pe_order.values() {
            for pair in order.windows(2) {
                extra_succs[pair[0].index()].push(pair[1]);
            }
        }
        let mut in_degree = vec![0usize; n];
        for id in graph.ids() {
            for &succ in graph.successors(id).iter().chain(&extra_succs[id.index()]) {
                in_degree[succ.index()] += 1;
            }
        }
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
            .filter(|&i| in_degree[i] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(i)) = heap.pop() {
            let id = SubtaskId::new(i);
            order.push(id);
            for &succ in graph.successors(id).iter().chain(&extra_succs[i]) {
                in_degree[succ.index()] -= 1;
                if in_degree[succ.index()] == 0 {
                    heap.push(std::cmp::Reverse(succ.index()));
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            let id = SubtaskId::new(in_degree.iter().position(|&d| d > 0).unwrap_or(0));
            Err(ModelError::InconsistentOrder { id })
        }
    }
}

/// The execution window of one subtask in a timed schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionWindow {
    /// The subtask being executed.
    pub subtask: SubtaskId,
    /// The PE it executes on.
    pub pe: PeAssignment,
    /// Execution start time.
    pub start: Time,
    /// Execution finish time.
    pub finish: Time,
}

impl ExecutionWindow {
    /// Duration of the window.
    pub fn duration(&self) -> Time {
        self.finish.saturating_sub(self.start)
    }
}

/// The load (reconfiguration) window of one subtask on the shared port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadWindow {
    /// The subtask whose configuration is loaded.
    pub subtask: SubtaskId,
    /// The abstract tile slot being reconfigured.
    pub slot: TileSlot,
    /// Load start time (port acquisition).
    pub start: Time,
    /// Load finish time (configuration resident).
    pub finish: Time,
}

impl LoadWindow {
    /// Duration of the load.
    pub fn duration(&self) -> Time {
        self.finish.saturating_sub(self.start)
    }
}

/// A fully timed schedule: execution windows for every subtask plus the load
/// windows placed on the reconfiguration port.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedSchedule {
    executions: Vec<ExecutionWindow>,
    loads: Vec<LoadWindow>,
    makespan: Time,
}

impl TimedSchedule {
    /// Assembles a timed schedule from its windows.
    ///
    /// The makespan is the latest finish time over all windows (loads may
    /// outlast the executions when the port keeps prefetching for a follow-up
    /// task).
    pub fn new(executions: Vec<ExecutionWindow>, loads: Vec<LoadWindow>) -> Self {
        let makespan = executions
            .iter()
            .map(|e| e.finish)
            .chain(loads.iter().map(|l| l.finish))
            .max()
            .unwrap_or(Time::ZERO);
        TimedSchedule {
            executions,
            loads,
            makespan,
        }
    }

    /// Execution windows indexed by subtask id order of insertion.
    pub fn executions(&self) -> &[ExecutionWindow] {
        &self.executions
    }

    /// The execution window of a specific subtask, if present.
    pub fn execution(&self, id: SubtaskId) -> Option<&ExecutionWindow> {
        self.executions.iter().find(|e| e.subtask == id)
    }

    /// Load windows in port order.
    pub fn loads(&self) -> &[LoadWindow] {
        &self.loads
    }

    /// The load window of a specific subtask, if its configuration was loaded.
    pub fn load(&self, id: SubtaskId) -> Option<&LoadWindow> {
        self.loads.iter().find(|l| l.subtask == id)
    }

    /// Completion time of the whole schedule.
    pub fn makespan(&self) -> Time {
        self.makespan
    }

    /// Completion time of the *executions* only (ignoring trailing loads that
    /// prefetch for a subsequent task).
    pub fn execution_makespan(&self) -> Time {
        self.executions
            .iter()
            .map(|e| e.finish)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// The reconfiguration overhead relative to an ideal makespan:
    /// `max(0, execution_makespan - ideal)`.
    pub fn overhead_vs(&self, ideal: Time) -> Time {
        self.execution_makespan().saturating_sub(ideal)
    }

    /// Number of loads actually performed.
    pub fn load_count(&self) -> usize {
        self.loads.len()
    }

    /// Instant at which the reconfiguration port becomes idle for good
    /// (`Time::ZERO` when no load was performed).
    pub fn port_idle_from(&self) -> Time {
        self.loads
            .iter()
            .map(|l| l.finish)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Renders a compact textual Gantt chart, one line per PE plus one line
    /// for the reconfiguration port. Intended for examples and debugging.
    pub fn to_gantt_string(&self, graph: &SubtaskGraph) -> String {
        use std::fmt::Write as _;
        let mut lines: BTreeMap<String, Vec<(Time, Time, String)>> = BTreeMap::new();
        for e in &self.executions {
            lines.entry(format!("{}", e.pe)).or_default().push((
                e.start,
                e.finish,
                format!("Ex {}", graph.subtask(e.subtask).name()),
            ));
        }
        for l in &self.loads {
            lines.entry("port".to_string()).or_default().push((
                l.start,
                l.finish,
                format!("L {}", graph.subtask(l.subtask).name()),
            ));
        }
        let mut out = String::new();
        for (pe, mut windows) in lines {
            windows.sort_by_key(|w| w.0);
            let _ = write!(out, "{pe:>6} |");
            for (start, finish, label) in windows {
                let _ = write!(out, " [{start}..{finish} {label}]");
            }
            out.push('\n');
        }
        let _ = write!(out, "makespan: {}", self.makespan);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ConfigId, IspId, PeClass};
    use crate::subtask::Subtask;

    fn st(name: &str, ms: u64, cfg: usize) -> Subtask {
        Subtask::new(name, Time::from_millis(ms), ConfigId::new(cfg))
    }

    fn chain_graph() -> (SubtaskGraph, Vec<SubtaskId>) {
        let mut g = SubtaskGraph::new("chain");
        let ids: Vec<SubtaskId> = (0..3)
            .map(|i| g.add_subtask(st(&format!("s{i}"), 10, i)))
            .collect();
        g.add_dependency(ids[0], ids[1]).unwrap();
        g.add_dependency(ids[1], ids[2]).unwrap();
        (g, ids)
    }

    #[test]
    fn from_assignment_groups_by_pe_and_orders_by_alap() {
        let (g, ids) = chain_graph();
        let slot0 = PeAssignment::Tile(TileSlot::new(0));
        let schedule = InitialSchedule::from_assignment(&g, vec![slot0, slot0, slot0]).unwrap();
        assert_eq!(schedule.subtasks_on(slot0), &ids[..]);
        assert_eq!(schedule.slot_count(), 1);
        assert_eq!(schedule.predecessor_on_pe(ids[1]), Some(ids[0]));
        assert_eq!(schedule.predecessor_on_pe(ids[0]), None);
        assert_eq!(schedule.successor_on_pe(ids[1]), Some(ids[2]));
        assert_eq!(schedule.first_on_slot(TileSlot::new(0)), Some(ids[0]));
    }

    #[test]
    fn assignment_length_mismatch_is_rejected() {
        let (g, _) = chain_graph();
        let slot0 = PeAssignment::Tile(TileSlot::new(0));
        let err = InitialSchedule::from_assignment(&g, vec![slot0]).unwrap_err();
        assert!(matches!(err, ModelError::IncompleteSchedule { .. }));
    }

    #[test]
    fn pe_class_mismatch_is_rejected() {
        let mut g = SubtaskGraph::new("mixed");
        let hw = g.add_subtask(st("hw", 5, 0));
        let sw = g.add_subtask(st("sw", 5, 1).with_pe_class(PeClass::Isp));
        g.add_dependency(hw, sw).unwrap();
        let err = InitialSchedule::from_assignment(
            &g,
            vec![
                PeAssignment::Tile(TileSlot::new(0)),
                PeAssignment::Tile(TileSlot::new(1)),
            ],
        )
        .unwrap_err();
        assert_eq!(err, ModelError::PeClassMismatch { id: sw });
        // And the correct assignment is accepted.
        let ok = InitialSchedule::from_assignment(
            &g,
            vec![
                PeAssignment::Tile(TileSlot::new(0)),
                PeAssignment::Isp(IspId::new(0)),
            ],
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn with_order_rejects_incomplete_or_contradictory_orders() {
        let (g, ids) = chain_graph();
        let slot0 = PeAssignment::Tile(TileSlot::new(0));
        let assignment = vec![slot0, slot0, slot0];
        // Missing subtask.
        let mut order = BTreeMap::new();
        order.insert(slot0, vec![ids[0], ids[1]]);
        assert!(matches!(
            InitialSchedule::with_order(&g, assignment.clone(), order).unwrap_err(),
            ModelError::IncompleteSchedule { .. }
        ));
        // Order that contradicts precedence: s2 before s0 on the same tile.
        let mut order = BTreeMap::new();
        order.insert(slot0, vec![ids[2], ids[1], ids[0]]);
        assert!(matches!(
            InitialSchedule::with_order(&g, assignment, order).unwrap_err(),
            ModelError::InconsistentOrder { .. }
        ));
    }

    #[test]
    fn ideal_timing_serializes_on_shared_pe() {
        let mut g = SubtaskGraph::new("par");
        let a = g.add_subtask(st("a", 10, 0));
        let b = g.add_subtask(st("b", 20, 1));
        // No precedence: a and b are independent.
        let slot0 = PeAssignment::Tile(TileSlot::new(0));
        let same = InitialSchedule::from_assignment(&g, vec![slot0, slot0]).unwrap();
        let timed = same.ideal_timing(&g).unwrap();
        assert_eq!(timed.makespan(), Time::from_millis(30));
        let separate =
            InitialSchedule::from_assignment(&g, vec![slot0, PeAssignment::Tile(TileSlot::new(1))])
                .unwrap();
        let timed = separate.ideal_timing(&g).unwrap();
        assert_eq!(timed.makespan(), Time::from_millis(20));
        assert_eq!(timed.execution(a).unwrap().start, Time::ZERO);
        assert_eq!(timed.execution(b).unwrap().start, Time::ZERO);
    }

    #[test]
    fn ideal_timing_respects_precedence() {
        let (g, ids) = chain_graph();
        let schedule = InitialSchedule::from_assignment(
            &g,
            vec![
                PeAssignment::Tile(TileSlot::new(0)),
                PeAssignment::Tile(TileSlot::new(1)),
                PeAssignment::Tile(TileSlot::new(2)),
            ],
        )
        .unwrap();
        let timed = schedule.ideal_timing(&g).unwrap();
        assert_eq!(timed.makespan(), Time::from_millis(30));
        assert_eq!(
            timed.execution(ids[2]).unwrap().start,
            Time::from_millis(20)
        );
        assert_eq!(timed.overhead_vs(Time::from_millis(30)), Time::ZERO);
        assert_eq!(timed.load_count(), 0);
        assert_eq!(timed.port_idle_from(), Time::ZERO);
    }

    #[test]
    fn timed_schedule_accessors() {
        let exec = vec![ExecutionWindow {
            subtask: SubtaskId::new(0),
            pe: PeAssignment::Tile(TileSlot::new(0)),
            start: Time::from_millis(4),
            finish: Time::from_millis(14),
        }];
        let loads = vec![LoadWindow {
            subtask: SubtaskId::new(0),
            slot: TileSlot::new(0),
            start: Time::ZERO,
            finish: Time::from_millis(4),
        }];
        let ts = TimedSchedule::new(exec, loads);
        assert_eq!(ts.makespan(), Time::from_millis(14));
        assert_eq!(ts.execution_makespan(), Time::from_millis(14));
        assert_eq!(ts.overhead_vs(Time::from_millis(10)), Time::from_millis(4));
        assert_eq!(
            ts.load(SubtaskId::new(0)).unwrap().duration(),
            Time::from_millis(4)
        );
        assert_eq!(
            ts.execution(SubtaskId::new(0)).unwrap().duration(),
            Time::from_millis(10)
        );
        assert_eq!(ts.port_idle_from(), Time::from_millis(4));
        assert_eq!(ts.load_count(), 1);
    }

    #[test]
    fn gantt_rendering_mentions_every_window() {
        let (g, _) = chain_graph();
        let slot0 = PeAssignment::Tile(TileSlot::new(0));
        let schedule = InitialSchedule::from_assignment(&g, vec![slot0, slot0, slot0]).unwrap();
        let timed = schedule.ideal_timing(&g).unwrap();
        let gantt = timed.to_gantt_string(&g);
        assert!(gantt.contains("Ex s0"));
        assert!(gantt.contains("Ex s2"));
        assert!(gantt.contains("makespan"));
    }

    #[test]
    fn fully_parallel_gives_each_drhw_subtask_its_own_slot() {
        let mut g = SubtaskGraph::new("mixed");
        let a = g.add_subtask(st("a", 5, 0));
        let b = g.add_subtask(st("b", 5, 1).with_pe_class(PeClass::Isp));
        let c = g.add_subtask(st("c", 5, 2));
        g.add_dependency(a, b).unwrap();
        g.add_dependency(b, c).unwrap();
        let s = InitialSchedule::fully_parallel(&g).unwrap();
        assert_eq!(s.slot_count(), 2);
        assert_eq!(s.assignment(a), PeAssignment::Tile(TileSlot::new(0)));
        assert_eq!(s.assignment(b), PeAssignment::Isp(IspId::new(0)));
        assert_eq!(s.assignment(c), PeAssignment::Tile(TileSlot::new(1)));
        assert_eq!(
            s.ideal_timing(&g).unwrap().makespan(),
            Time::from_millis(15)
        );
    }

    #[test]
    fn drhw_subtasks_lists_slot_order() {
        let (g, ids) = chain_graph();
        let slot0 = PeAssignment::Tile(TileSlot::new(0));
        let slot1 = PeAssignment::Tile(TileSlot::new(1));
        let schedule = InitialSchedule::from_assignment(&g, vec![slot0, slot1, slot0]).unwrap();
        assert_eq!(schedule.drhw_subtasks(), vec![ids[0], ids[2], ids[1]]);
    }
}
