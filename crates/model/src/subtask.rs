//! Subtasks: the schedulable units of a task graph.

use serde::{Deserialize, Serialize};

use crate::ids::{ConfigId, PeClass};
use crate::time::Time;

/// One schedulable node of a [`SubtaskGraph`](crate::SubtaskGraph).
///
/// A subtask carries the information every scheduler in the flow needs:
/// how long it executes, which configuration bitstream it requires (DRHW
/// subtasks only), which class of processing element it runs on, and a rough
/// energy figure used by the TCM Pareto exploration.
///
/// # Examples
///
/// ```
/// use drhw_model::{ConfigId, PeClass, Subtask, Time};
///
/// let dct = Subtask::new("dct", Time::from_millis(12), ConfigId::new(3));
/// assert_eq!(dct.pe_class(), PeClass::Drhw);
/// assert_eq!(dct.exec_time(), Time::from_millis(12));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Subtask {
    name: String,
    exec_time: Time,
    config: ConfigId,
    pe_class: PeClass,
    exec_energy_mj: f64,
}

impl Subtask {
    /// Default energy figure per millisecond of DRHW execution, in millijoule.
    ///
    /// The absolute value is irrelevant to the prefetch heuristics; it only
    /// gives the TCM Pareto curves a second axis with a sensible shape.
    pub const DEFAULT_ENERGY_PER_MS: f64 = 1.0;

    /// Creates a DRHW subtask with the given name, execution time and
    /// configuration, using the default energy model.
    pub fn new(name: impl Into<String>, exec_time: Time, config: ConfigId) -> Self {
        Subtask {
            name: name.into(),
            exec_time,
            config,
            pe_class: PeClass::Drhw,
            exec_energy_mj: exec_time.as_millis_f64() * Self::DEFAULT_ENERGY_PER_MS,
        }
    }

    /// Returns a copy of this subtask targeted at the given PE class.
    ///
    /// ISP subtasks never require configuration loads.
    #[must_use]
    pub fn with_pe_class(mut self, pe_class: PeClass) -> Self {
        self.pe_class = pe_class;
        self
    }

    /// Returns a copy of this subtask with an explicit execution energy in mJ.
    ///
    /// # Panics
    ///
    /// Panics if `energy_mj` is negative or not finite.
    #[must_use]
    pub fn with_energy_mj(mut self, energy_mj: f64) -> Self {
        assert!(
            energy_mj.is_finite() && energy_mj >= 0.0,
            "energy must be finite and non-negative, got {energy_mj}"
        );
        self.exec_energy_mj = energy_mj;
        self
    }

    /// The human-readable name of the subtask.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Execution time on its assigned processing element (load time excluded).
    pub fn exec_time(&self) -> Time {
        self.exec_time
    }

    /// The configuration bitstream this subtask requires.
    ///
    /// Two subtasks sharing a `ConfigId` can reuse each other's loaded
    /// configuration; the reuse module relies on this identity.
    pub fn config(&self) -> ConfigId {
        self.config
    }

    /// The class of processing element the subtask runs on.
    pub fn pe_class(&self) -> PeClass {
        self.pe_class
    }

    /// Whether executing this subtask requires a configuration to be resident,
    /// i.e. whether it is mapped on reconfigurable hardware.
    pub fn needs_configuration(&self) -> bool {
        self.pe_class == PeClass::Drhw
    }

    /// Execution energy in millijoule (used by the TCM energy axis).
    pub fn exec_energy_mj(&self) -> f64 {
        self.exec_energy_mj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ConfigId;

    #[test]
    fn new_defaults_to_drhw_with_derived_energy() {
        let s = Subtask::new("huffman", Time::from_millis(10), ConfigId::new(0));
        assert_eq!(s.name(), "huffman");
        assert_eq!(s.exec_time(), Time::from_millis(10));
        assert_eq!(s.config(), ConfigId::new(0));
        assert_eq!(s.pe_class(), PeClass::Drhw);
        assert!(s.needs_configuration());
        assert!((s.exec_energy_mj() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn isp_subtasks_do_not_need_configuration() {
        let s = Subtask::new("control", Time::from_millis(1), ConfigId::new(9))
            .with_pe_class(PeClass::Isp);
        assert_eq!(s.pe_class(), PeClass::Isp);
        assert!(!s.needs_configuration());
    }

    #[test]
    fn explicit_energy_overrides_default() {
        let s = Subtask::new("idct", Time::from_millis(5), ConfigId::new(1)).with_energy_mj(42.5);
        assert!((s.exec_energy_mj() - 42.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_energy_is_rejected() {
        let _ = Subtask::new("bad", Time::from_millis(5), ConfigId::new(1)).with_energy_mj(-1.0);
    }

    #[test]
    fn subtasks_with_same_fields_are_equal() {
        let a = Subtask::new("x", Time::from_millis(2), ConfigId::new(7));
        let b = Subtask::new("x", Time::from_millis(2), ConfigId::new(7));
        assert_eq!(a, b);
    }
}
