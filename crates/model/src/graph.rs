//! Directed acyclic graphs of subtasks.
//!
//! A [`SubtaskGraph`] is the unit the TCM design-time scheduler and every
//! prefetch heuristic operate on: nodes are [`Subtask`]s, edges are precedence
//! (data-dependence) constraints. The graph owns its nodes and stores both
//! successor and predecessor adjacency so the forward sweep (ASAP/executor)
//! and the backward sweep (ALAP/criticality weights) are equally cheap.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::ids::{ConfigId, PeClass, SubtaskId};
use crate::subtask::Subtask;
use crate::time::Time;

/// A directed acyclic graph of subtasks with precedence edges.
///
/// # Examples
///
/// ```
/// use drhw_model::{ConfigId, Subtask, SubtaskGraph, Time};
///
/// # fn main() -> Result<(), drhw_model::ModelError> {
/// let mut graph = SubtaskGraph::new("jpeg");
/// let huff = graph.add_subtask(Subtask::new("huffman", Time::from_millis(20), ConfigId::new(0)));
/// let iq = graph.add_subtask(Subtask::new("iq", Time::from_millis(15), ConfigId::new(1)));
/// graph.add_dependency(huff, iq)?;
/// assert_eq!(graph.len(), 2);
/// assert_eq!(graph.topological_order()?, vec![huff, iq]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubtaskGraph {
    name: String,
    subtasks: Vec<Subtask>,
    succs: Vec<Vec<SubtaskId>>,
    preds: Vec<Vec<SubtaskId>>,
}

impl SubtaskGraph {
    /// Creates an empty graph with a human-readable name.
    pub fn new(name: impl Into<String>) -> Self {
        SubtaskGraph {
            name: name.into(),
            subtasks: Vec::new(),
            succs: Vec::new(),
            preds: Vec::new(),
        }
    }

    /// The graph's name (usually the task or scenario it belongs to).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a subtask and returns its dense identifier.
    pub fn add_subtask(&mut self, subtask: Subtask) -> SubtaskId {
        let id = SubtaskId::new(self.subtasks.len());
        self.subtasks.push(subtask);
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        id
    }

    /// Adds a precedence edge `from -> to` (`to` cannot start before `from`
    /// finishes).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownSubtask`] if either endpoint does not
    /// exist, [`ModelError::SelfDependency`] if `from == to`, and
    /// [`ModelError::DuplicateEdge`] if the edge already exists. Cycles are
    /// only detected by [`SubtaskGraph::validate`] /
    /// [`SubtaskGraph::topological_order`], because detecting them per edge
    /// would make incremental construction quadratic.
    pub fn add_dependency(&mut self, from: SubtaskId, to: SubtaskId) -> Result<(), ModelError> {
        self.check_id(from)?;
        self.check_id(to)?;
        if from == to {
            return Err(ModelError::SelfDependency { id: from });
        }
        if self.succs[from.index()].contains(&to) {
            return Err(ModelError::DuplicateEdge { from, to });
        }
        self.succs[from.index()].push(to);
        self.preds[to.index()].push(from);
        Ok(())
    }

    fn check_id(&self, id: SubtaskId) -> Result<(), ModelError> {
        if id.index() < self.subtasks.len() {
            Ok(())
        } else {
            Err(ModelError::UnknownSubtask {
                id,
                len: self.subtasks.len(),
            })
        }
    }

    /// Number of subtasks in the graph.
    pub fn len(&self) -> usize {
        self.subtasks.len()
    }

    /// Returns `true` if the graph has no subtasks.
    pub fn is_empty(&self) -> bool {
        self.subtasks.is_empty()
    }

    /// Returns the subtask with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range; ids handed out by
    /// [`SubtaskGraph::add_subtask`] are always valid.
    pub fn subtask(&self, id: SubtaskId) -> &Subtask {
        &self.subtasks[id.index()]
    }

    /// Fallible lookup of a subtask.
    pub fn get(&self, id: SubtaskId) -> Option<&Subtask> {
        self.subtasks.get(id.index())
    }

    /// Iterates over `(id, subtask)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (SubtaskId, &Subtask)> + '_ {
        self.subtasks
            .iter()
            .enumerate()
            .map(|(i, s)| (SubtaskId::new(i), s))
    }

    /// Iterates over all subtask ids in id order.
    pub fn ids(&self) -> impl Iterator<Item = SubtaskId> + '_ {
        (0..self.subtasks.len()).map(SubtaskId::new)
    }

    /// Direct predecessors (dependencies) of a subtask.
    pub fn predecessors(&self, id: SubtaskId) -> &[SubtaskId] {
        &self.preds[id.index()]
    }

    /// Direct successors (dependents) of a subtask.
    pub fn successors(&self, id: SubtaskId) -> &[SubtaskId] {
        &self.succs[id.index()]
    }

    /// Iterates over every precedence edge as `(from, to)`.
    pub fn edges(&self) -> impl Iterator<Item = (SubtaskId, SubtaskId)> + '_ {
        self.succs
            .iter()
            .enumerate()
            .flat_map(|(from, tos)| tos.iter().map(move |&to| (SubtaskId::new(from), to)))
    }

    /// Number of precedence edges.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// Subtasks with no predecessors.
    pub fn sources(&self) -> Vec<SubtaskId> {
        self.ids()
            .filter(|id| self.preds[id.index()].is_empty())
            .collect()
    }

    /// Subtasks with no successors.
    pub fn sinks(&self) -> Vec<SubtaskId> {
        self.ids()
            .filter(|id| self.succs[id.index()].is_empty())
            .collect()
    }

    /// Ids of all subtasks mapped on reconfigurable hardware (the ones that may
    /// require configuration loads).
    pub fn drhw_subtasks(&self) -> Vec<SubtaskId> {
        self.iter()
            .filter(|(_, s)| s.pe_class() == PeClass::Drhw)
            .map(|(id, _)| id)
            .collect()
    }

    /// The configuration required by a subtask, or `None` for ISP subtasks.
    pub fn required_config(&self, id: SubtaskId) -> Option<ConfigId> {
        let s = self.subtask(id);
        s.needs_configuration().then(|| s.config())
    }

    /// Sum of all subtask execution times (a lower bound on any single-PE
    /// schedule and the numerator of utilisation metrics).
    pub fn total_exec_time(&self) -> Time {
        self.subtasks.iter().map(Subtask::exec_time).sum()
    }

    /// Total execution energy of the graph in millijoule.
    pub fn total_exec_energy_mj(&self) -> f64 {
        self.subtasks.iter().map(Subtask::exec_energy_mj).sum()
    }

    /// Checks structural invariants: the graph is non-empty and acyclic.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyGraph`] or [`ModelError::CyclicGraph`].
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.is_empty() {
            return Err(ModelError::EmptyGraph);
        }
        self.topological_order().map(|_| ())
    }

    /// Returns a topological order of the subtasks (Kahn's algorithm).
    ///
    /// Ties are broken by subtask id so the order is deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CyclicGraph`] if the precedence constraints
    /// contain a cycle.
    pub fn topological_order(&self) -> Result<Vec<SubtaskId>, ModelError> {
        let n = self.subtasks.len();
        let mut in_degree: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        // A sorted frontier keeps the order deterministic and id-monotone among ready nodes.
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
            .filter(|&i| in_degree[i] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(i)) = ready.pop() {
            order.push(SubtaskId::new(i));
            for &succ in &self.succs[i] {
                in_degree[succ.index()] -= 1;
                if in_degree[succ.index()] == 0 {
                    ready.push(std::cmp::Reverse(succ.index()));
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(ModelError::CyclicGraph)
        }
    }

    /// Returns `true` if `ancestor` reaches `descendant` through precedence
    /// edges (transitively). A node does not reach itself.
    pub fn reaches(&self, ancestor: SubtaskId, descendant: SubtaskId) -> bool {
        if ancestor == descendant {
            return false;
        }
        let mut stack = vec![ancestor];
        let mut seen = vec![false; self.subtasks.len()];
        while let Some(node) = stack.pop() {
            for &succ in &self.succs[node.index()] {
                if succ == descendant {
                    return true;
                }
                if !seen[succ.index()] {
                    seen[succ.index()] = true;
                    stack.push(succ);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ConfigId;

    fn subtask(name: &str, ms: u64) -> Subtask {
        Subtask::new(name, Time::from_millis(ms), ConfigId::new(ms as usize))
    }

    fn diamond() -> (SubtaskGraph, [SubtaskId; 4]) {
        let mut g = SubtaskGraph::new("diamond");
        let a = g.add_subtask(subtask("a", 1));
        let b = g.add_subtask(subtask("b", 2));
        let c = g.add_subtask(subtask("c", 3));
        let d = g.add_subtask(subtask("d", 4));
        g.add_dependency(a, b).unwrap();
        g.add_dependency(a, c).unwrap();
        g.add_dependency(b, d).unwrap();
        g.add_dependency(c, d).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn add_subtask_returns_dense_ids() {
        let mut g = SubtaskGraph::new("t");
        assert_eq!(g.add_subtask(subtask("x", 1)), SubtaskId::new(0));
        assert_eq!(g.add_subtask(subtask("y", 1)), SubtaskId::new(1));
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
    }

    #[test]
    fn adjacency_is_tracked_in_both_directions() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.successors(a), &[b, c]);
        assert_eq!(g.predecessors(d), &[b, c]);
        assert_eq!(g.predecessors(a), &[] as &[SubtaskId]);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.sources(), vec![a]);
        assert_eq!(g.sinks(), vec![d]);
    }

    #[test]
    fn invalid_edges_are_rejected() {
        let mut g = SubtaskGraph::new("t");
        let a = g.add_subtask(subtask("a", 1));
        let b = g.add_subtask(subtask("b", 1));
        assert_eq!(
            g.add_dependency(a, SubtaskId::new(9)),
            Err(ModelError::UnknownSubtask {
                id: SubtaskId::new(9),
                len: 2
            })
        );
        assert_eq!(
            g.add_dependency(a, a),
            Err(ModelError::SelfDependency { id: a })
        );
        g.add_dependency(a, b).unwrap();
        assert_eq!(
            g.add_dependency(a, b),
            Err(ModelError::DuplicateEdge { from: a, to: b })
        );
    }

    #[test]
    fn topological_order_is_valid_and_deterministic() {
        let (g, [a, b, c, d]) = diamond();
        let order = g.topological_order().unwrap();
        assert_eq!(order, vec![a, b, c, d]);
        let pos: Vec<usize> = (0..4)
            .map(|i| order.iter().position(|x| x.index() == i).unwrap())
            .collect();
        for (from, to) in g.edges() {
            assert!(pos[from.index()] < pos[to.index()]);
        }
    }

    #[test]
    fn cycles_are_detected() {
        let mut g = SubtaskGraph::new("cyclic");
        let a = g.add_subtask(subtask("a", 1));
        let b = g.add_subtask(subtask("b", 1));
        let c = g.add_subtask(subtask("c", 1));
        g.add_dependency(a, b).unwrap();
        g.add_dependency(b, c).unwrap();
        g.add_dependency(c, a).unwrap();
        assert_eq!(g.topological_order(), Err(ModelError::CyclicGraph));
        assert_eq!(g.validate(), Err(ModelError::CyclicGraph));
    }

    #[test]
    fn empty_graph_fails_validation() {
        let g = SubtaskGraph::new("empty");
        assert_eq!(g.validate(), Err(ModelError::EmptyGraph));
    }

    #[test]
    fn totals_sum_over_all_subtasks() {
        let (g, _) = diamond();
        assert_eq!(g.total_exec_time(), Time::from_millis(10));
        assert!((g.total_exec_energy_mj() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn drhw_subtasks_filters_by_pe_class() {
        let mut g = SubtaskGraph::new("mixed");
        let a = g.add_subtask(subtask("hw", 1));
        let _b = g.add_subtask(subtask("sw", 2).with_pe_class(PeClass::Isp));
        let c = g.add_subtask(subtask("hw2", 3));
        assert_eq!(g.drhw_subtasks(), vec![a, c]);
        assert_eq!(g.required_config(a), Some(ConfigId::new(1)));
        assert_eq!(g.required_config(SubtaskId::new(1)), None);
    }

    #[test]
    fn reachability_follows_transitive_edges() {
        let (g, [a, b, c, d]) = diamond();
        assert!(g.reaches(a, d));
        assert!(g.reaches(a, b));
        assert!(!g.reaches(b, c));
        assert!(!g.reaches(d, a));
        assert!(!g.reaches(a, a));
    }

    #[test]
    fn iter_and_ids_cover_every_subtask_once() {
        let (g, _) = diamond();
        assert_eq!(g.iter().count(), 4);
        assert_eq!(g.ids().count(), 4);
        let names: Vec<&str> = g.iter().map(|(_, s)| s.name()).collect();
        assert_eq!(names, vec!["a", "b", "c", "d"]);
    }
}
