//! The DRHW platform model (the ICN tile model of the paper).
//!
//! The platform is an FPGA split into a set of identical, independently
//! reconfigurable tiles behind an interconnection network, optionally coupled
//! with embedded instruction-set processors. One shared reconfiguration
//! controller loads configurations one at a time; each load takes the same
//! latency on every tile (the tiles are identical by construction).

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::time::Time;

/// Description of a reconfigurable platform.
///
/// # Examples
///
/// ```
/// use drhw_model::{Platform, Time};
///
/// # fn main() -> Result<(), drhw_model::ModelError> {
/// let platform = Platform::new(8, Time::from_millis(4))?;
/// assert_eq!(platform.tile_count(), 8);
/// assert_eq!(platform.reconfig_latency(), Time::from_millis(4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    tile_count: usize,
    reconfig_latency: Time,
    isp_count: usize,
    reconfig_energy_mj: f64,
}

impl Platform {
    /// Reconfiguration latency of roughly one tenth of a Virtex XC2V6000,
    /// the figure the paper quotes (4 ms).
    pub const VIRTEX_TILE_LATENCY: Time = Time::from_millis(4);

    /// Default energy cost of one reconfiguration in millijoule.
    ///
    /// Only the *relative* energy of cancelled loads matters to the
    /// experiments; the constant gives reuse statistics a physical flavour.
    pub const DEFAULT_RECONFIG_ENERGY_MJ: f64 = 2.0;

    /// Creates a platform with `tile_count` identical DRHW tiles and the given
    /// per-tile reconfiguration latency. No ISPs are included by default.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyPlatform`] if `tile_count` is zero.
    pub fn new(tile_count: usize, reconfig_latency: Time) -> Result<Self, ModelError> {
        if tile_count == 0 {
            return Err(ModelError::EmptyPlatform);
        }
        Ok(Platform {
            tile_count,
            reconfig_latency,
            isp_count: 0,
            reconfig_energy_mj: Self::DEFAULT_RECONFIG_ENERGY_MJ,
        })
    }

    /// Creates a Virtex-II-like platform: `tile_count` tiles, 4 ms latency.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyPlatform`] if `tile_count` is zero.
    pub fn virtex_like(tile_count: usize) -> Result<Self, ModelError> {
        Platform::new(tile_count, Self::VIRTEX_TILE_LATENCY)
    }

    /// Returns a copy of this platform with `isp_count` instruction-set
    /// processors attached (subtasks of class [`PeClass::Isp`] run there).
    ///
    /// [`PeClass::Isp`]: crate::PeClass::Isp
    #[must_use]
    pub fn with_isps(mut self, isp_count: usize) -> Self {
        self.isp_count = isp_count;
        self
    }

    /// Returns a copy of this platform with an explicit per-load energy cost.
    ///
    /// # Panics
    ///
    /// Panics if `energy_mj` is negative or not finite.
    #[must_use]
    pub fn with_reconfig_energy_mj(mut self, energy_mj: f64) -> Self {
        assert!(
            energy_mj.is_finite() && energy_mj >= 0.0,
            "energy must be finite and non-negative, got {energy_mj}"
        );
        self.reconfig_energy_mj = energy_mj;
        self
    }

    /// Returns a copy of this platform with a different number of tiles.
    ///
    /// Convenient for the tile-count sweeps of Figures 6 and 7.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyPlatform`] if `tile_count` is zero.
    pub fn resized(&self, tile_count: usize) -> Result<Self, ModelError> {
        if tile_count == 0 {
            return Err(ModelError::EmptyPlatform);
        }
        Ok(Platform {
            tile_count,
            ..self.clone()
        })
    }

    /// Number of DRHW tiles.
    pub fn tile_count(&self) -> usize {
        self.tile_count
    }

    /// Latency of loading one configuration onto one tile.
    pub fn reconfig_latency(&self) -> Time {
        self.reconfig_latency
    }

    /// Number of instruction-set processors.
    pub fn isp_count(&self) -> usize {
        self.isp_count
    }

    /// Energy cost of one reconfiguration in millijoule.
    pub fn reconfig_energy_mj(&self) -> f64 {
        self.reconfig_energy_mj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_zero_tiles() {
        assert_eq!(
            Platform::new(0, Time::from_millis(4)).unwrap_err(),
            ModelError::EmptyPlatform
        );
        assert!(Platform::new(1, Time::ZERO).is_ok());
    }

    #[test]
    fn virtex_like_uses_four_millisecond_latency() {
        let p = Platform::virtex_like(9).unwrap();
        assert_eq!(p.tile_count(), 9);
        assert_eq!(p.reconfig_latency(), Time::from_millis(4));
        assert_eq!(p.isp_count(), 0);
    }

    #[test]
    fn builder_style_extensions() {
        let p = Platform::virtex_like(4)
            .unwrap()
            .with_isps(2)
            .with_reconfig_energy_mj(3.5);
        assert_eq!(p.isp_count(), 2);
        assert!((p.reconfig_energy_mj() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn resized_keeps_other_parameters() {
        let p = Platform::virtex_like(8).unwrap().with_isps(1);
        let q = p.resized(16).unwrap();
        assert_eq!(q.tile_count(), 16);
        assert_eq!(q.isp_count(), 1);
        assert_eq!(q.reconfig_latency(), p.reconfig_latency());
        assert!(p.resized(0).is_err());
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_energy_is_rejected() {
        let _ = Platform::virtex_like(4)
            .unwrap()
            .with_reconfig_energy_mj(-0.1);
    }
}
