//! Graph timing analysis: ASAP/ALAP levels and criticality weights.
//!
//! The design-time phase of the hybrid heuristic ranks subtasks by *weight*:
//! "the longest path (in terms of execution time) from the beginning of the
//! execution of the subtask to the end of the execution of the whole graph
//! with an As-Late-As-Possible schedule" (paper, §5). That quantity is the
//! classic *bottom level* of the node, so subtasks on the critical path always
//! carry the largest weights.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::graph::SubtaskGraph;
use crate::ids::SubtaskId;
use crate::time::Time;

/// Precedence-only timing analysis of a [`SubtaskGraph`].
///
/// All quantities ignore resource constraints (number of tiles, the
/// reconfiguration port): they describe the data-flow structure of the graph,
/// which is what the criticality weights of the paper are defined on.
///
/// # Examples
///
/// ```
/// use drhw_model::{ConfigId, GraphAnalysis, Subtask, SubtaskGraph, Time};
///
/// # fn main() -> Result<(), drhw_model::ModelError> {
/// let mut g = SubtaskGraph::new("chain");
/// let a = g.add_subtask(Subtask::new("a", Time::from_millis(2), ConfigId::new(0)));
/// let b = g.add_subtask(Subtask::new("b", Time::from_millis(3), ConfigId::new(1)));
/// g.add_dependency(a, b)?;
/// let analysis = GraphAnalysis::new(&g)?;
/// assert_eq!(analysis.critical_path(), Time::from_millis(5));
/// assert_eq!(analysis.weight(a), Time::from_millis(5));
/// assert_eq!(analysis.weight(b), Time::from_millis(3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphAnalysis {
    topological: Vec<SubtaskId>,
    asap_start: Vec<Time>,
    alap_start: Vec<Time>,
    bottom_level: Vec<Time>,
    critical_path: Time,
}

impl GraphAnalysis {
    /// Analyses a graph.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyGraph`] for an empty graph and
    /// [`ModelError::CyclicGraph`] if the precedence constraints are cyclic.
    pub fn new(graph: &SubtaskGraph) -> Result<Self, ModelError> {
        if graph.is_empty() {
            return Err(ModelError::EmptyGraph);
        }
        let topological = graph.topological_order()?;
        let n = graph.len();

        // Forward sweep: earliest (ASAP) start times under precedence only.
        let mut asap_start = vec![Time::ZERO; n];
        for &id in &topological {
            let ready = graph
                .predecessors(id)
                .iter()
                .map(|&p| asap_start[p.index()] + graph.subtask(p).exec_time())
                .max()
                .unwrap_or(Time::ZERO);
            asap_start[id.index()] = ready;
        }
        let critical_path = topological
            .iter()
            .map(|&id| asap_start[id.index()] + graph.subtask(id).exec_time())
            .max()
            .unwrap_or(Time::ZERO);

        // Backward sweep: bottom levels (weight of the paper) and ALAP starts.
        let mut bottom_level = vec![Time::ZERO; n];
        for &id in topological.iter().rev() {
            let tail = graph
                .successors(id)
                .iter()
                .map(|&s| bottom_level[s.index()])
                .max()
                .unwrap_or(Time::ZERO);
            bottom_level[id.index()] = graph.subtask(id).exec_time() + tail;
        }
        let alap_start: Vec<Time> = (0..n).map(|i| critical_path - bottom_level[i]).collect();

        Ok(GraphAnalysis {
            topological,
            asap_start,
            alap_start,
            bottom_level,
            critical_path,
        })
    }

    /// The topological order used by the sweeps (deterministic).
    pub fn topological_order(&self) -> &[SubtaskId] {
        &self.topological
    }

    /// Earliest possible start time of a subtask under precedence constraints.
    pub fn asap_start(&self, id: SubtaskId) -> Time {
        self.asap_start[id.index()]
    }

    /// Latest start time of a subtask that still allows the graph to finish in
    /// its critical-path length.
    pub fn alap_start(&self, id: SubtaskId) -> Time {
        self.alap_start[id.index()]
    }

    /// The *weight* of a subtask as defined by the paper: the longest path
    /// from the start of this subtask's execution to the end of the graph.
    ///
    /// Equivalent to the node's bottom level (its own execution time plus the
    /// heaviest chain of successors).
    pub fn weight(&self, id: SubtaskId) -> Time {
        self.bottom_level[id.index()]
    }

    /// Length of the critical path (the precedence-only makespan with
    /// unlimited resources and zero reconfiguration overhead).
    pub fn critical_path(&self) -> Time {
        self.critical_path
    }

    /// Slack of a subtask: how much its start may slip past ASAP without
    /// stretching the critical path.
    pub fn slack(&self, id: SubtaskId) -> Time {
        self.alap_start[id.index()].saturating_sub(self.asap_start[id.index()])
    }

    /// Returns `true` if the subtask lies on a critical path (zero slack).
    pub fn is_on_critical_path(&self, id: SubtaskId) -> bool {
        self.slack(id).is_zero()
    }

    /// Subtask ids sorted by decreasing weight (ties broken by id for
    /// determinism). This is the priority order used by the list scheduler and
    /// by the initialization phase of the hybrid heuristic.
    pub fn ids_by_weight_desc(&self) -> Vec<SubtaskId> {
        let mut ids: Vec<SubtaskId> = (0..self.bottom_level.len()).map(SubtaskId::new).collect();
        ids.sort_by(|a, b| {
            self.bottom_level[b.index()]
                .cmp(&self.bottom_level[a.index()])
                .then(a.index().cmp(&b.index()))
        });
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ConfigId;
    use crate::subtask::Subtask;

    fn st(name: &str, ms: u64) -> Subtask {
        Subtask::new(name, Time::from_millis(ms), ConfigId::new(0))
    }

    /// The 4-subtask example of Fig. 3: 1 -> 2, 1 -> 3, 3 -> 4.
    fn fig3_graph() -> (SubtaskGraph, [SubtaskId; 4]) {
        let mut g = SubtaskGraph::new("fig3");
        let s1 = g.add_subtask(st("1", 10));
        let s2 = g.add_subtask(st("2", 8));
        let s3 = g.add_subtask(st("3", 6));
        let s4 = g.add_subtask(st("4", 9));
        g.add_dependency(s1, s2).unwrap();
        g.add_dependency(s1, s3).unwrap();
        g.add_dependency(s3, s4).unwrap();
        (g, [s1, s2, s3, s4])
    }

    #[test]
    fn asap_starts_follow_precedence() {
        let (g, [s1, s2, s3, s4]) = fig3_graph();
        let a = GraphAnalysis::new(&g).unwrap();
        assert_eq!(a.asap_start(s1), Time::ZERO);
        assert_eq!(a.asap_start(s2), Time::from_millis(10));
        assert_eq!(a.asap_start(s3), Time::from_millis(10));
        assert_eq!(a.asap_start(s4), Time::from_millis(16));
        assert_eq!(a.critical_path(), Time::from_millis(25));
    }

    #[test]
    fn weights_are_bottom_levels() {
        let (g, [s1, s2, s3, s4]) = fig3_graph();
        let a = GraphAnalysis::new(&g).unwrap();
        assert_eq!(a.weight(s4), Time::from_millis(9));
        assert_eq!(a.weight(s3), Time::from_millis(15));
        assert_eq!(a.weight(s2), Time::from_millis(8));
        assert_eq!(a.weight(s1), Time::from_millis(25));
    }

    #[test]
    fn alap_and_slack_are_consistent() {
        let (g, [s1, s2, s3, s4]) = fig3_graph();
        let a = GraphAnalysis::new(&g).unwrap();
        // Critical path is 1 -> 3 -> 4.
        assert!(a.is_on_critical_path(s1));
        assert!(a.is_on_critical_path(s3));
        assert!(a.is_on_critical_path(s4));
        assert!(!a.is_on_critical_path(s2));
        assert_eq!(a.slack(s2), Time::from_millis(7));
        assert_eq!(a.alap_start(s2), Time::from_millis(17));
        for id in g.ids() {
            assert!(a.alap_start(id) >= a.asap_start(id));
        }
    }

    #[test]
    fn weight_ordering_puts_critical_path_first() {
        let (g, [s1, s2, s3, s4]) = fig3_graph();
        let a = GraphAnalysis::new(&g).unwrap();
        assert_eq!(a.ids_by_weight_desc(), vec![s1, s3, s4, s2]);
    }

    #[test]
    fn single_node_graph_is_its_own_critical_path() {
        let mut g = SubtaskGraph::new("single");
        let only = g.add_subtask(st("only", 7));
        let a = GraphAnalysis::new(&g).unwrap();
        assert_eq!(a.critical_path(), Time::from_millis(7));
        assert_eq!(a.weight(only), Time::from_millis(7));
        assert_eq!(a.slack(only), Time::ZERO);
    }

    #[test]
    fn parallel_independent_nodes_all_have_full_weight_of_themselves() {
        let mut g = SubtaskGraph::new("parallel");
        let a_id = g.add_subtask(st("a", 5));
        let b_id = g.add_subtask(st("b", 3));
        let a = GraphAnalysis::new(&g).unwrap();
        assert_eq!(a.critical_path(), Time::from_millis(5));
        assert_eq!(a.weight(a_id), Time::from_millis(5));
        assert_eq!(a.weight(b_id), Time::from_millis(3));
        assert_eq!(a.slack(b_id), Time::from_millis(2));
    }

    #[test]
    fn empty_graph_is_an_error() {
        let g = SubtaskGraph::new("empty");
        assert_eq!(GraphAnalysis::new(&g).unwrap_err(), ModelError::EmptyGraph);
    }
}
