//! Strongly typed identifiers.
//!
//! The scheduling flow juggles several different index spaces: subtasks within
//! a graph, tasks within an application set, scenarios within a task, abstract
//! tile *slots* within a schedule, physical tiles on the platform, ISPs, and
//! configuration bitstreams. Mixing these up is the classic source of subtle
//! scheduling bugs, so each space gets its own newtype ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub usize);

        impl $name {
            /// Creates a new identifier from a raw index.
            pub const fn new(index: usize) -> Self {
                $name(index)
            }

            /// Returns the raw index backing this identifier.
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(index: usize) -> Self {
                $name(index)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.0
            }
        }
    };
}

id_newtype!(
    /// Index of a subtask within one [`SubtaskGraph`](crate::SubtaskGraph).
    ///
    /// Subtask ids are dense: the `n`-th subtask added to a graph gets id `n`.
    SubtaskId,
    "st"
);

id_newtype!(
    /// Identifier of a task (one node of the application-level task set).
    TaskId,
    "task"
);

id_newtype!(
    /// Identifier of a scenario (one behaviour variant / graph version of a task).
    ScenarioId,
    "sc"
);

id_newtype!(
    /// An *abstract* DRHW tile slot used by an initial schedule.
    ///
    /// The design-time scheduler assigns subtasks to interchangeable abstract
    /// slots; the replacement module later maps slots to concrete
    /// [`TileId`]s to maximise configuration reuse.
    TileSlot,
    "slot"
);

id_newtype!(
    /// A physical DRHW tile of the platform (one independently reconfigurable
    /// region wrapped by an ICN communication interface).
    TileId,
    "tile"
);

id_newtype!(
    /// An embedded instruction-set processor of the platform.
    IspId,
    "isp"
);

id_newtype!(
    /// A configuration bitstream identity.
    ///
    /// Two subtasks with equal `ConfigId` can reuse each other's loaded
    /// configuration; distinct ids always require a reconfiguration.
    ConfigId,
    "cfg"
);

/// The processing element class a subtask may execute on.
///
/// Only DRHW subtasks require configuration loads; ISP subtasks never do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PeClass {
    /// Runs on a dynamically reconfigurable tile and needs its configuration
    /// loaded before execution.
    Drhw,
    /// Runs on an embedded instruction-set processor; no load required.
    Isp,
}

impl fmt::Display for PeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeClass::Drhw => write!(f, "DRHW"),
            PeClass::Isp => write!(f, "ISP"),
        }
    }
}

/// A processing element assignment used by an initial schedule: either an
/// abstract DRHW tile slot or an ISP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PeAssignment {
    /// Assigned to an abstract DRHW tile slot.
    Tile(TileSlot),
    /// Assigned to an instruction-set processor.
    Isp(IspId),
}

impl PeAssignment {
    /// Returns the PE class of this assignment.
    pub fn class(self) -> PeClass {
        match self {
            PeAssignment::Tile(_) => PeClass::Drhw,
            PeAssignment::Isp(_) => PeClass::Isp,
        }
    }

    /// Returns the tile slot if this is a DRHW assignment.
    pub fn tile_slot(self) -> Option<TileSlot> {
        match self {
            PeAssignment::Tile(slot) => Some(slot),
            PeAssignment::Isp(_) => None,
        }
    }

    /// Returns `true` if this assignment targets reconfigurable hardware.
    pub fn is_drhw(self) -> bool {
        matches!(self, PeAssignment::Tile(_))
    }
}

impl fmt::Display for PeAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeAssignment::Tile(slot) => write!(f, "{slot}"),
            PeAssignment::Isp(isp) => write!(f, "{isp}"),
        }
    }
}

impl From<TileSlot> for PeAssignment {
    fn from(slot: TileSlot) -> Self {
        PeAssignment::Tile(slot)
    }
}

impl From<IspId> for PeAssignment {
    fn from(isp: IspId) -> Self {
        PeAssignment::Isp(isp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_round_trips_through_usize() {
        let id = SubtaskId::new(7);
        assert_eq!(id.index(), 7);
        assert_eq!(usize::from(id), 7);
        assert_eq!(SubtaskId::from(7usize), id);
    }

    #[test]
    fn ids_display_with_prefixes() {
        assert_eq!(SubtaskId::new(3).to_string(), "st3");
        assert_eq!(TaskId::new(1).to_string(), "task1");
        assert_eq!(TileId::new(2).to_string(), "tile2");
        assert_eq!(TileSlot::new(0).to_string(), "slot0");
        assert_eq!(ConfigId::new(9).to_string(), "cfg9");
        assert_eq!(IspId::new(4).to_string(), "isp4");
        assert_eq!(ScenarioId::new(5).to_string(), "sc5");
    }

    #[test]
    fn distinct_id_types_do_not_compare() {
        // This is a compile-time property; the test documents the intent by
        // exercising the types in separate collections.
        let subtasks = [SubtaskId::new(0), SubtaskId::new(1)];
        let tiles = [TileId::new(0), TileId::new(1)];
        assert_eq!(subtasks.len(), tiles.len());
    }

    #[test]
    fn pe_assignment_classification() {
        let drhw = PeAssignment::Tile(TileSlot::new(2));
        let isp = PeAssignment::Isp(IspId::new(0));
        assert!(drhw.is_drhw());
        assert!(!isp.is_drhw());
        assert_eq!(drhw.class(), PeClass::Drhw);
        assert_eq!(isp.class(), PeClass::Isp);
        assert_eq!(drhw.tile_slot(), Some(TileSlot::new(2)));
        assert_eq!(isp.tile_slot(), None);
    }

    #[test]
    fn pe_assignment_from_conversions() {
        let a: PeAssignment = TileSlot::new(1).into();
        let b: PeAssignment = IspId::new(3).into();
        assert_eq!(a, PeAssignment::Tile(TileSlot::new(1)));
        assert_eq!(b, PeAssignment::Isp(IspId::new(3)));
    }

    #[test]
    fn pe_class_display() {
        assert_eq!(PeClass::Drhw.to_string(), "DRHW");
        assert_eq!(PeClass::Isp.to_string(), "ISP");
        assert_eq!(PeAssignment::Tile(TileSlot::new(0)).to_string(), "slot0");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        let mut v = vec![SubtaskId::new(4), SubtaskId::new(1), SubtaskId::new(3)];
        v.sort();
        assert_eq!(
            v,
            vec![SubtaskId::new(1), SubtaskId::new(3), SubtaskId::new(4)]
        );
    }
}
