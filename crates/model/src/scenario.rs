//! Tasks, scenarios and task sets (the TCM application model).
//!
//! In TCM an application is a set of *tasks*; each task is a subtask graph.
//! Non-deterministic behaviour stays outside the task boundaries: when a
//! task's behaviour depends on external data, one graph per behaviour is
//! generated and called a *scenario* (e.g. the B, P and I frame variants of
//! the MPEG encoder). The run-time scheduler identifies the active scenario of
//! every running task and picks a pre-computed schedule for it.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::graph::SubtaskGraph;
use crate::ids::{ScenarioId, TaskId};
use crate::time::Time;

/// One behaviour variant of a task: a concrete subtask graph plus the relative
/// frequency with which the run-time scheduler observes it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    id: ScenarioId,
    name: String,
    graph: SubtaskGraph,
    probability: f64,
}

impl Scenario {
    /// Creates a scenario wrapping a subtask graph with selection probability 1.
    pub fn new(id: ScenarioId, graph: SubtaskGraph) -> Self {
        let name = graph.name().to_string();
        Scenario {
            id,
            name,
            graph,
            probability: 1.0,
        }
    }

    /// Returns a copy with the given relative selection probability.
    ///
    /// Probabilities of the scenarios of one task are normalised by the
    /// run-time scenario selector, so they only need to be proportional.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is negative or not finite.
    #[must_use]
    pub fn with_probability(mut self, probability: f64) -> Self {
        assert!(
            probability.is_finite() && probability >= 0.0,
            "probability must be finite and non-negative, got {probability}"
        );
        self.probability = probability;
        self
    }

    /// Scenario identifier (unique within its task).
    pub fn id(&self) -> ScenarioId {
        self.id
    }

    /// Scenario name (defaults to the graph name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The subtask graph describing this behaviour.
    pub fn graph(&self) -> &SubtaskGraph {
        &self.graph
    }

    /// Relative selection probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }
}

/// A task: a named collection of scenarios sharing an identity and an optional
/// real-time constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    id: TaskId,
    name: String,
    scenarios: Vec<Scenario>,
    deadline: Option<Time>,
}

impl Task {
    /// Creates a task from its scenarios.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyGraph`] if `scenarios` is empty or any
    /// scenario graph fails validation.
    pub fn new(
        id: TaskId,
        name: impl Into<String>,
        scenarios: Vec<Scenario>,
    ) -> Result<Self, ModelError> {
        if scenarios.is_empty() {
            return Err(ModelError::EmptyGraph);
        }
        for scenario in &scenarios {
            scenario.graph().validate()?;
        }
        Ok(Task {
            id,
            name: name.into(),
            scenarios,
            deadline: None,
        })
    }

    /// Creates a task with a single scenario built from one graph.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph fails validation.
    pub fn single_scenario(
        id: TaskId,
        name: impl Into<String>,
        graph: SubtaskGraph,
    ) -> Result<Self, ModelError> {
        Task::new(id, name, vec![Scenario::new(ScenarioId::new(0), graph)])
    }

    /// Returns a copy with a real-time deadline attached (used by the TCM
    /// run-time scheduler when picking Pareto points).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Time) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Task identifier.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Task name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The scenarios of this task (never empty).
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Looks up a scenario by id.
    pub fn scenario(&self, id: ScenarioId) -> Option<&Scenario> {
        self.scenarios.iter().find(|s| s.id() == id)
    }

    /// Number of scenarios.
    pub fn scenario_count(&self) -> usize {
        self.scenarios.len()
    }

    /// The real-time deadline, if one was set.
    pub fn deadline(&self) -> Option<Time> {
        self.deadline
    }

    /// Average ideal (critical-path) execution time over scenarios, weighted
    /// by probability. Useful for reporting.
    pub fn mean_critical_path(&self) -> Time {
        let total_prob: f64 = self.scenarios.iter().map(Scenario::probability).sum();
        if total_prob <= 0.0 {
            return Time::ZERO;
        }
        let mean_micros: f64 = self
            .scenarios
            .iter()
            .filter_map(|s| {
                crate::GraphAnalysis::new(s.graph())
                    .ok()
                    .map(|a| a.critical_path().as_micros() as f64 * s.probability())
            })
            .sum::<f64>()
            / total_prob;
        Time::from_micros(mean_micros.round() as u64)
    }
}

/// A named set of tasks forming the application mix of an experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSet {
    name: String,
    tasks: Vec<Task>,
}

impl TaskSet {
    /// Creates a task set.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyGraph`] if `tasks` is empty.
    pub fn new(name: impl Into<String>, tasks: Vec<Task>) -> Result<Self, ModelError> {
        if tasks.is_empty() {
            return Err(ModelError::EmptyGraph);
        }
        Ok(TaskSet {
            name: name.into(),
            tasks,
        })
    }

    /// Name of the task set.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tasks of the set.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Looks up a task by id.
    pub fn task(&self, id: TaskId) -> Option<&Task> {
        self.tasks.iter().find(|t| t.id() == id)
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Returns `true` if the set has no tasks (never true for a validated set).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total number of scenarios across all tasks.
    pub fn scenario_count(&self) -> usize {
        self.tasks.iter().map(Task::scenario_count).sum()
    }

    /// Largest number of abstract tile slots any single scenario can use when
    /// every DRHW subtask gets its own slot (an upper bound on the tiles a
    /// fully parallel schedule needs).
    pub fn max_drhw_subtasks(&self) -> usize {
        self.tasks
            .iter()
            .flat_map(Task::scenarios)
            .map(|s| s.graph().drhw_subtasks().len())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ConfigId;
    use crate::subtask::Subtask;

    fn graph(name: &str, n: usize, ms: u64) -> SubtaskGraph {
        let mut g = SubtaskGraph::new(name);
        let ids: Vec<_> = (0..n)
            .map(|i| {
                g.add_subtask(Subtask::new(
                    format!("{name}{i}"),
                    Time::from_millis(ms),
                    ConfigId::new(i),
                ))
            })
            .collect();
        for w in ids.windows(2) {
            g.add_dependency(w[0], w[1]).unwrap();
        }
        g
    }

    #[test]
    fn scenario_defaults_and_probability() {
        let s = Scenario::new(ScenarioId::new(0), graph("g", 2, 5));
        assert_eq!(s.name(), "g");
        assert_eq!(s.probability(), 1.0);
        let s = s.with_probability(0.25);
        assert_eq!(s.probability(), 0.25);
    }

    #[test]
    #[should_panic(expected = "probability must be finite")]
    fn negative_probability_panics() {
        let _ = Scenario::new(ScenarioId::new(0), graph("g", 2, 5)).with_probability(-0.5);
    }

    #[test]
    fn task_requires_at_least_one_valid_scenario() {
        assert_eq!(
            Task::new(TaskId::new(0), "t", vec![]).unwrap_err(),
            ModelError::EmptyGraph
        );
        let empty_graph = SubtaskGraph::new("empty");
        let bad = Task::new(
            TaskId::new(0),
            "t",
            vec![Scenario::new(ScenarioId::new(0), empty_graph)],
        );
        assert!(bad.is_err());
        let ok = Task::single_scenario(TaskId::new(0), "t", graph("g", 3, 10)).unwrap();
        assert_eq!(ok.scenario_count(), 1);
        assert_eq!(ok.name(), "t");
        assert!(ok.deadline().is_none());
    }

    #[test]
    fn task_scenario_lookup_and_deadline() {
        let scenarios = vec![
            Scenario::new(ScenarioId::new(0), graph("b", 2, 5)).with_probability(0.5),
            Scenario::new(ScenarioId::new(1), graph("p", 3, 5)).with_probability(0.5),
        ];
        let task = Task::new(TaskId::new(1), "mpeg", scenarios)
            .unwrap()
            .with_deadline(Time::from_millis(40));
        assert_eq!(task.scenario(ScenarioId::new(1)).unwrap().name(), "p");
        assert!(task.scenario(ScenarioId::new(7)).is_none());
        assert_eq!(task.deadline(), Some(Time::from_millis(40)));
        // Mean of 10ms and 15ms critical paths with equal probability.
        assert_eq!(task.mean_critical_path(), Time::from_micros(12_500));
    }

    #[test]
    fn task_set_aggregates() {
        let t0 = Task::single_scenario(TaskId::new(0), "a", graph("a", 4, 10)).unwrap();
        let t1 = Task::single_scenario(TaskId::new(1), "b", graph("b", 6, 10)).unwrap();
        let set = TaskSet::new("mix", vec![t0, t1]).unwrap();
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert_eq!(set.scenario_count(), 2);
        assert_eq!(set.max_drhw_subtasks(), 6);
        assert_eq!(set.task(TaskId::new(1)).unwrap().name(), "b");
        assert!(set.task(TaskId::new(9)).is_none());
        assert!(TaskSet::new("empty", vec![]).is_err());
    }
}
