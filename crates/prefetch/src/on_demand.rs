//! The "without prefetch" baseline.
//!
//! Configurations are loaded only when the subtask is otherwise ready to run,
//! so every load sits squarely on the critical path. This is the first
//! simulation of §7 (23 % overhead on the multimedia set, 71 % on the 3-D
//! renderer).

use crate::error::PrefetchError;
use crate::executor::{simulate, LoadStrategy};
use crate::problem::{ExecutionResult, PrefetchProblem};
use crate::scheduler::PrefetchScheduler;

/// Loads each configuration on demand, first-come first-served.
///
/// # Examples
///
/// ```
/// use drhw_model::{ConfigId, InitialSchedule, PeAssignment, Platform, Subtask, SubtaskGraph,
///     TileSlot, Time};
/// use drhw_prefetch::{OnDemandScheduler, PrefetchProblem, PrefetchScheduler};
///
/// # fn main() -> Result<(), drhw_prefetch::PrefetchError> {
/// let mut g = SubtaskGraph::new("single");
/// g.add_subtask(Subtask::new("only", Time::from_millis(10), ConfigId::new(0)));
/// let schedule = InitialSchedule::from_assignment(&g, vec![PeAssignment::Tile(TileSlot::new(0))])?;
/// let platform = Platform::virtex_like(1)?;
/// let problem = PrefetchProblem::new(&g, &schedule, &platform)?;
/// let result = OnDemandScheduler::new().schedule(&problem)?;
/// // The single load cannot be hidden: the task pays the full 4 ms.
/// assert_eq!(result.penalty(), Time::from_millis(4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OnDemandScheduler;

impl OnDemandScheduler {
    /// Creates the baseline scheduler.
    pub fn new() -> Self {
        OnDemandScheduler
    }
}

impl PrefetchScheduler for OnDemandScheduler {
    fn name(&self) -> &str {
        "on-demand"
    }

    fn schedule(&self, problem: &PrefetchProblem<'_>) -> Result<ExecutionResult, PrefetchError> {
        simulate(problem, LoadStrategy::OnDemand)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ListScheduler;
    use drhw_model::{
        ConfigId, InitialSchedule, PeAssignment, Platform, Subtask, SubtaskGraph, TileSlot, Time,
    };

    fn pipeline(n: usize) -> (SubtaskGraph, InitialSchedule, Platform) {
        let mut g = SubtaskGraph::new("pipe");
        let ids: Vec<_> = (0..n)
            .map(|i| {
                g.add_subtask(Subtask::new(
                    format!("s{i}"),
                    Time::from_millis(10),
                    ConfigId::new(i),
                ))
            })
            .collect();
        for w in ids.windows(2) {
            g.add_dependency(w[0], w[1]).unwrap();
        }
        let assignment = ids
            .iter()
            .map(|id| PeAssignment::Tile(TileSlot::new(id.index())))
            .collect();
        let schedule = InitialSchedule::from_assignment(&g, assignment).unwrap();
        let platform = Platform::virtex_like(n).unwrap();
        (g, schedule, platform)
    }

    #[test]
    fn on_demand_pays_one_latency_per_sequential_subtask() {
        let (g, schedule, platform) = pipeline(4);
        let problem = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        let result = OnDemandScheduler::new().schedule(&problem).unwrap();
        // A pure pipeline on separate tiles: every one of the 4 loads delays
        // the chain by the full 4 ms latency.
        assert_eq!(result.penalty(), Time::from_millis(16));
        assert_eq!(result.overhead_ratio(), 0.4);
    }

    #[test]
    fn prefetch_strictly_improves_a_pipeline() {
        let (g, schedule, platform) = pipeline(6);
        let problem = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        let on_demand = OnDemandScheduler::new().schedule(&problem).unwrap();
        let list = ListScheduler::new().schedule(&problem).unwrap();
        assert!(list.penalty() < on_demand.penalty());
        // With 10 ms executions and 4 ms loads, every later load hides behind
        // the running predecessor: only the first one is exposed.
        assert_eq!(list.penalty(), Time::from_millis(4));
    }
}
