//! Errors produced by the prefetch schedulers.

use std::error::Error;
use std::fmt;

use drhw_model::{ModelError, SubtaskId};

/// Errors returned by the prefetch-scheduling public API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PrefetchError {
    /// The underlying model (graph, schedule, platform) is invalid.
    Model(ModelError),
    /// A load order references a subtask that does not need a load (or does
    /// not exist), or misses one that does.
    InvalidLoadOrder {
        /// The offending subtask.
        id: SubtaskId,
    },
    /// The given load order cannot be executed: the port would wait forever
    /// for a tile that can only become free after a later load in the order.
    DeadlockedOrder,
    /// The initial schedule uses more tile slots than the platform provides.
    NotEnoughTiles {
        /// Slots required by the schedule.
        required: usize,
        /// Tiles available on the platform.
        available: usize,
    },
    /// The task graph has more subtasks than the bitmask-based hot kernels
    /// can track (the [`SlotMask`](crate::SlotMask) width). The classic
    /// scheduler entry points remain available for larger graphs.
    ExceedsMaskWidth {
        /// Subtasks in the graph.
        subtasks: usize,
        /// Maximum the prepared-schedule kernels support.
        capacity: usize,
    },
}

impl fmt::Display for PrefetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefetchError::Model(e) => write!(f, "invalid model: {e}"),
            PrefetchError::InvalidLoadOrder { id } => {
                write!(
                    f,
                    "load order is not a permutation of the required loads (subtask {id})"
                )
            }
            PrefetchError::DeadlockedOrder => {
                write!(
                    f,
                    "load order deadlocks against the tile occupancy constraints"
                )
            }
            PrefetchError::NotEnoughTiles {
                required,
                available,
            } => {
                write!(
                    f,
                    "schedule needs {required} tile slots but the platform has {available} tiles"
                )
            }
            PrefetchError::ExceedsMaskWidth { subtasks, capacity } => {
                write!(
                    f,
                    "graph has {subtasks} subtasks but the prepared-schedule kernels track at \
                     most {capacity}; use the classic scheduler API for larger graphs"
                )
            }
        }
    }
}

impl Error for PrefetchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PrefetchError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for PrefetchError {
    fn from(e: ModelError) -> Self {
        PrefetchError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = PrefetchError::from(ModelError::CyclicGraph);
        assert!(e.to_string().contains("invalid model"));
        assert!(Error::source(&e).is_some());
        let e = PrefetchError::InvalidLoadOrder {
            id: SubtaskId::new(2),
        };
        assert!(e.to_string().contains("st2"));
        assert!(Error::source(&e).is_none());
        let e = PrefetchError::NotEnoughTiles {
            required: 8,
            available: 3,
        };
        assert!(e.to_string().contains("8"));
        let e = PrefetchError::ExceedsMaskWidth {
            subtasks: 90,
            capacity: 64,
        };
        assert!(e.to_string().contains("90 subtasks"));
        assert!(e.to_string().contains("at most 64"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<PrefetchError>();
    }
}
