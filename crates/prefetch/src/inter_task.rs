//! Inter-task optimization (§6).
//!
//! Once a task's last configuration load has finished, the reconfiguration
//! port sits idle until the task completes. The run-time prefetch module uses
//! that final idle window to start the initialization phase of the *next* task
//! in the sequence produced by the TCM run-time scheduler, hiding loads that
//! would otherwise delay it. The helpers in this module do the window
//! bookkeeping shared by the "run-time + inter-task" policy and the hybrid
//! heuristic.

use drhw_model::{SubtaskId, Time};
use serde::{Deserialize, Serialize};

/// The idle window the reconfiguration port offers at the end of a task.
///
/// # Examples
///
/// ```
/// use drhw_model::Time;
/// use drhw_prefetch::InterTaskWindow;
///
/// let mut window = InterTaskWindow::new(Time::from_millis(10));
/// // A 4 ms load fits; only 6 ms of idle time remain.
/// assert_eq!(window.absorb(Time::from_millis(4)), Time::from_millis(4));
/// assert_eq!(window.remaining(), Time::from_millis(6));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct InterTaskWindow {
    remaining: Time,
}

impl InterTaskWindow {
    /// Creates a window of the given duration.
    pub fn new(duration: Time) -> Self {
        InterTaskWindow {
            remaining: duration,
        }
    }

    /// An empty window (no idle time available).
    pub fn empty() -> Self {
        InterTaskWindow {
            remaining: Time::ZERO,
        }
    }

    /// Idle time still available.
    pub fn remaining(&self) -> Time {
        self.remaining
    }

    /// Returns `true` if no idle time is left.
    pub fn is_exhausted(&self) -> bool {
        self.remaining.is_zero()
    }

    /// Consumes up to `work` from the window and returns how much was
    /// actually hidden.
    pub fn absorb(&mut self, work: Time) -> Time {
        let hidden = self.remaining.min(work);
        self.remaining = self.remaining.saturating_sub(hidden);
        hidden
    }

    /// How many whole loads of the given latency fit in the remaining window.
    pub fn whole_loads(&self, latency: Time) -> usize {
        if latency.is_zero() {
            usize::MAX
        } else {
            (self.remaining.as_micros() / latency.as_micros()) as usize
        }
    }
}

/// Splits a weight-ordered list of pending loads into the prefix that fits in
/// the inter-task window (and is therefore preloaded before the task starts)
/// and the suffix that must still be loaded by the task itself.
///
/// The order of `loads_by_weight_desc` is preserved in both halves; the
/// initialization phase of the hybrid heuristic, like the run-time heuristic,
/// loads the most critical subtask first (§6).
///
/// # Examples
///
/// ```
/// use drhw_model::{SubtaskId, Time};
/// use drhw_prefetch::{plan_preloads, InterTaskWindow};
///
/// let loads = vec![SubtaskId::new(2), SubtaskId::new(0), SubtaskId::new(1)];
/// let window = InterTaskWindow::new(Time::from_millis(9));
/// let (preloaded, remaining) = plan_preloads(&loads, window, Time::from_millis(4));
/// assert_eq!(preloaded, vec![SubtaskId::new(2), SubtaskId::new(0)]);
/// assert_eq!(remaining, vec![SubtaskId::new(1)]);
/// ```
pub fn plan_preloads(
    loads_by_weight_desc: &[SubtaskId],
    window: InterTaskWindow,
    latency: Time,
) -> (Vec<SubtaskId>, Vec<SubtaskId>) {
    let fit = window.whole_loads(latency).min(loads_by_weight_desc.len());
    let preloaded = loads_by_weight_desc[..fit].to_vec();
    let remaining = loads_by_weight_desc[fit..].to_vec();
    (preloaded, remaining)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_absorbs_up_to_its_capacity() {
        let mut w = InterTaskWindow::new(Time::from_millis(6));
        assert_eq!(w.absorb(Time::from_millis(4)), Time::from_millis(4));
        assert_eq!(w.absorb(Time::from_millis(4)), Time::from_millis(2));
        assert!(w.is_exhausted());
        assert_eq!(w.absorb(Time::from_millis(1)), Time::ZERO);
    }

    #[test]
    fn whole_loads_floors_the_ratio() {
        let w = InterTaskWindow::new(Time::from_millis(11));
        assert_eq!(w.whole_loads(Time::from_millis(4)), 2);
        assert_eq!(w.whole_loads(Time::from_millis(12)), 0);
        assert_eq!(
            InterTaskWindow::empty().whole_loads(Time::from_millis(4)),
            0
        );
    }

    #[test]
    fn zero_latency_loads_always_fit() {
        let w = InterTaskWindow::new(Time::from_millis(1));
        assert_eq!(w.whole_loads(Time::ZERO), usize::MAX);
    }

    #[test]
    fn plan_preloads_splits_by_whole_loads() {
        let loads: Vec<SubtaskId> = (0..4).map(SubtaskId::new).collect();
        let (pre, rest) = plan_preloads(
            &loads,
            InterTaskWindow::new(Time::from_millis(8)),
            Time::from_millis(4),
        );
        assert_eq!(pre.len(), 2);
        assert_eq!(rest.len(), 2);
        let (pre, rest) = plan_preloads(
            &loads,
            InterTaskWindow::new(Time::from_millis(100)),
            Time::from_millis(4),
        );
        assert_eq!(pre.len(), 4);
        assert!(rest.is_empty());
        let (pre, rest) = plan_preloads(&loads, InterTaskWindow::empty(), Time::from_millis(4));
        assert!(pre.is_empty());
        assert_eq!(rest.len(), 4);
    }
}
