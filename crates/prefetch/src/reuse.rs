//! The reuse module: tracking tile contents and deciding which subtasks can
//! reuse a resident configuration (ref [6]).
//!
//! At run time, the only information the hybrid prefetcher needs is *which
//! subtasks of the selected schedule find their configuration already loaded*
//! on the physical tile their slot is mapped to. [`TileContents`] tracks what
//! every tile holds across task activations, and [`reusable_subtasks`] turns
//! that state plus a slot-to-tile mapping into the resident set consumed by
//! [`PrefetchProblem::with_resident`](crate::PrefetchProblem::with_resident).

use std::collections::BTreeSet;

use drhw_model::{ConfigId, InitialSchedule, SubtaskGraph, SubtaskId, TileId, TileSlot, Time};
use serde::{Deserialize, Serialize};

/// The configuration currently loaded on every physical tile, together with
/// the last time each tile was used (for LRU-style replacement).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileContents {
    configs: Vec<Option<ConfigId>>,
    last_used: Vec<Time>,
}

impl TileContents {
    /// Creates the state of a platform whose tiles are all empty.
    pub fn new(tile_count: usize) -> Self {
        TileContents {
            configs: vec![None; tile_count],
            last_used: vec![Time::ZERO; tile_count],
        }
    }

    /// Number of tiles tracked.
    pub fn tile_count(&self) -> usize {
        self.configs.len()
    }

    /// The configuration currently on a tile, if any.
    pub fn config_on(&self, tile: TileId) -> Option<ConfigId> {
        self.configs.get(tile.index()).copied().flatten()
    }

    /// When the tile last executed or received a configuration.
    pub fn last_used(&self, tile: TileId) -> Time {
        self.last_used
            .get(tile.index())
            .copied()
            .unwrap_or(Time::ZERO)
    }

    /// Records that `config` was loaded onto `tile` at instant `now`.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is out of range.
    pub fn record_load(&mut self, tile: TileId, config: ConfigId, now: Time) {
        self.configs[tile.index()] = Some(config);
        self.last_used[tile.index()] = self.last_used[tile.index()].max(now);
    }

    /// Records that the configuration on `tile` was used (executed) at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is out of range.
    pub fn record_use(&mut self, tile: TileId, now: Time) {
        self.last_used[tile.index()] = self.last_used[tile.index()].max(now);
    }

    /// Tiles currently holding the given configuration.
    pub fn tiles_holding(&self, config: ConfigId) -> Vec<TileId> {
        self.configs
            .iter()
            .enumerate()
            .filter(|(_, c)| **c == Some(config))
            .map(|(i, _)| TileId::new(i))
            .collect()
    }

    /// Clears every tile (e.g. when the FPGA is fully reconfigured).
    pub fn clear(&mut self) {
        for c in &mut self.configs {
            *c = None;
        }
    }

    /// Resets the tracker to the cold state of [`TileContents::new`]: every
    /// tile empty *and* every LRU timestamp back to zero. Unlike
    /// [`clear`](Self::clear) this is bit-identical to a freshly constructed
    /// value, which is what the chunked simulation engine needs when it
    /// reuses one tracker across chunk boundaries instead of reallocating.
    pub fn reset(&mut self) {
        for c in &mut self.configs {
            *c = None;
        }
        for t in &mut self.last_used {
            *t = Time::ZERO;
        }
    }
}

/// A mapping from the abstract tile slots of one schedule to physical tiles.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileMapping {
    slot_to_tile: Vec<TileId>,
}

impl TileMapping {
    /// Creates a mapping from a dense slot-indexed vector.
    pub fn new(slot_to_tile: Vec<TileId>) -> Self {
        TileMapping { slot_to_tile }
    }

    /// The identity mapping (slot *i* on tile *i*).
    pub fn identity(slot_count: usize) -> Self {
        TileMapping {
            slot_to_tile: (0..slot_count).map(TileId::new).collect(),
        }
    }

    /// The physical tile a slot is mapped to.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is outside the mapping.
    pub fn tile_of(&self, slot: TileSlot) -> TileId {
        self.slot_to_tile[slot.index()]
    }

    /// Number of slots mapped.
    pub fn slot_count(&self) -> usize {
        self.slot_to_tile.len()
    }

    /// Iterates over `(slot, tile)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TileSlot, TileId)> + '_ {
        self.slot_to_tile
            .iter()
            .enumerate()
            .map(|(s, &t)| (TileSlot::new(s), t))
    }
}

/// Determines which subtasks of a schedule can reuse a configuration that is
/// already resident on the physical tile their slot is mapped to.
///
/// Only the *first* DRHW subtask of each slot can profit from what a previous
/// task left on the tile — anything executed later on the slot sees whatever
/// the slot's own loads put there (that intra-task reuse is handled by
/// [`PrefetchProblem`](crate::PrefetchProblem) itself).
pub fn reusable_subtasks(
    graph: &SubtaskGraph,
    schedule: &InitialSchedule,
    mapping: &TileMapping,
    contents: &TileContents,
) -> BTreeSet<SubtaskId> {
    let mut resident = BTreeSet::new();
    for slot_index in 0..schedule.slot_count() {
        let slot = TileSlot::new(slot_index);
        let Some(first) = schedule.first_on_slot(slot) else {
            continue;
        };
        let Some(required) = graph.required_config(first) else {
            continue;
        };
        if slot_index < mapping.slot_count()
            && contents.config_on(mapping.tile_of(slot)) == Some(required)
        {
            resident.insert(first);
        }
    }
    resident
}

/// Applies the effect of executing a task to the tile contents: every slot's
/// tile ends up holding the configuration of the last DRHW subtask executed on
/// that slot, stamped with the completion instant `now`.
pub fn apply_schedule_to_contents(
    graph: &SubtaskGraph,
    schedule: &InitialSchedule,
    mapping: &TileMapping,
    contents: &mut TileContents,
    now: Time,
) {
    for (slot, tile) in mapping.iter() {
        let subtasks = schedule.subtasks_on(drhw_model::PeAssignment::Tile(slot));
        let last_config = subtasks
            .iter()
            .rev()
            .find_map(|&id| graph.required_config(id));
        if let Some(config) = last_config {
            contents.record_load(tile, config, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drhw_model::{PeAssignment, Platform, Subtask};

    fn simple() -> (SubtaskGraph, InitialSchedule, Platform) {
        let mut g = SubtaskGraph::new("simple");
        let a = g.add_subtask(Subtask::new("a", Time::from_millis(5), ConfigId::new(10)));
        let b = g.add_subtask(Subtask::new("b", Time::from_millis(5), ConfigId::new(11)));
        let c = g.add_subtask(Subtask::new("c", Time::from_millis(5), ConfigId::new(12)));
        g.add_dependency(a, b).unwrap();
        g.add_dependency(b, c).unwrap();
        let schedule = InitialSchedule::from_assignment(
            &g,
            vec![
                PeAssignment::Tile(TileSlot::new(0)),
                PeAssignment::Tile(TileSlot::new(1)),
                PeAssignment::Tile(TileSlot::new(0)),
            ],
        )
        .unwrap();
        let platform = Platform::virtex_like(4).unwrap();
        (g, schedule, platform)
    }

    #[test]
    fn empty_tiles_offer_no_reuse() {
        let (g, schedule, platform) = simple();
        let contents = TileContents::new(platform.tile_count());
        let mapping = TileMapping::identity(schedule.slot_count());
        assert!(reusable_subtasks(&g, &schedule, &mapping, &contents).is_empty());
    }

    #[test]
    fn matching_configuration_on_the_mapped_tile_is_reused() {
        let (g, schedule, platform) = simple();
        let mut contents = TileContents::new(platform.tile_count());
        contents.record_load(TileId::new(2), ConfigId::new(10), Time::from_millis(1));
        // Slot 0 mapped on tile 2 which holds cfg10 = config of subtask a.
        let mapping = TileMapping::new(vec![TileId::new(2), TileId::new(0)]);
        let resident = reusable_subtasks(&g, &schedule, &mapping, &contents);
        assert_eq!(resident, [SubtaskId::new(0)].into_iter().collect());
    }

    #[test]
    fn only_the_first_subtask_of_a_slot_can_reuse_residual_contents() {
        let (g, schedule, platform) = simple();
        let mut contents = TileContents::new(platform.tile_count());
        // Tile 0 holds the configuration of subtask c, which runs *second* on
        // slot 0: the residual content is overwritten by a's load first.
        contents.record_load(TileId::new(0), ConfigId::new(12), Time::from_millis(1));
        let mapping = TileMapping::identity(schedule.slot_count());
        assert!(reusable_subtasks(&g, &schedule, &mapping, &contents).is_empty());
    }

    #[test]
    fn contents_track_loads_uses_and_lru_times() {
        let mut contents = TileContents::new(3);
        assert_eq!(contents.tile_count(), 3);
        assert_eq!(contents.config_on(TileId::new(0)), None);
        contents.record_load(TileId::new(0), ConfigId::new(5), Time::from_millis(10));
        contents.record_use(TileId::new(0), Time::from_millis(25));
        assert_eq!(contents.config_on(TileId::new(0)), Some(ConfigId::new(5)));
        assert_eq!(contents.last_used(TileId::new(0)), Time::from_millis(25));
        assert_eq!(
            contents.tiles_holding(ConfigId::new(5)),
            vec![TileId::new(0)]
        );
        // Stale timestamps never move backwards.
        contents.record_use(TileId::new(0), Time::from_millis(1));
        assert_eq!(contents.last_used(TileId::new(0)), Time::from_millis(25));
        contents.clear();
        assert_eq!(contents.config_on(TileId::new(0)), None);
    }

    #[test]
    fn apply_schedule_leaves_the_last_configuration_of_each_slot() {
        let (g, schedule, platform) = simple();
        let mut contents = TileContents::new(platform.tile_count());
        let mapping = TileMapping::identity(schedule.slot_count());
        apply_schedule_to_contents(
            &g,
            &schedule,
            &mapping,
            &mut contents,
            Time::from_millis(15),
        );
        // Slot 0 executed a then c: tile 0 ends with c's configuration.
        assert_eq!(contents.config_on(TileId::new(0)), Some(ConfigId::new(12)));
        assert_eq!(contents.config_on(TileId::new(1)), Some(ConfigId::new(11)));
        assert_eq!(contents.last_used(TileId::new(0)), Time::from_millis(15));
        // Running the same task again now reuses slot 1's configuration (slot 0
        // needs a's configuration which was overwritten by c's).
        let resident = reusable_subtasks(&g, &schedule, &mapping, &contents);
        assert_eq!(resident, [SubtaskId::new(1)].into_iter().collect());
    }

    #[test]
    fn tile_mapping_accessors() {
        let mapping = TileMapping::new(vec![TileId::new(3), TileId::new(1)]);
        assert_eq!(mapping.slot_count(), 2);
        assert_eq!(mapping.tile_of(TileSlot::new(0)), TileId::new(3));
        let pairs: Vec<_> = mapping.iter().collect();
        assert_eq!(
            pairs,
            vec![
                (TileSlot::new(0), TileId::new(3)),
                (TileSlot::new(1), TileId::new(1))
            ]
        );
        let ident = TileMapping::identity(3);
        assert_eq!(ident.tile_of(TileSlot::new(2)), TileId::new(2));
    }
}
