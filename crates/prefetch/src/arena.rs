//! Allocation-free per-activation evaluation kernels.
//!
//! The dynamic simulation evaluates the same (graph, initial schedule,
//! platform) triple thousands of times with different residency states. The
//! classic entry points ([`PrefetchProblem`](crate::PrefetchProblem) plus the
//! [`PrefetchScheduler`](crate::PrefetchScheduler) implementations) rebuild
//! the graph analysis, the topological order and a handful of vectors on
//! every call — fine for one-shot use, wasteful in a hot loop.
//!
//! This module splits that work in two:
//!
//! * [`PreparedSchedule`] owns everything that is *activation-independent*,
//!   computed once per (task, scenario) pair and laid out
//!   **struct-of-arrays**: parallel flat vectors indexed by subtask id
//!   (execution times, criticality weights, required configurations, per-PE
//!   predecessors) and by slot (first subtask, desired and last
//!   configuration), plus CSR-packed adjacency (graph + PE predecessors,
//!   per-slot subtask lists) so the timing loop streams contiguous cache
//!   lines instead of chasing per-slot structures.
//! * [`Scratch`] owns every buffer the per-activation kernels write into.
//!   One scratch per worker thread; buffers are pre-sized with
//!   [`Scratch::reserve`], so a warm evaluation loop performs **zero heap
//!   allocations**.
//!
//! Residency, needs-load and pending-load sets are [`SlotMask`] bitmasks
//! (one `u64` word each): membership is a bit test, set union is `OR`, and
//! "are all dependencies timed?" is a single `AND` against a precomputed
//! per-subtask dependency mask. The mask width bounds the kernels to graphs
//! of at most [`SlotMask::CAPACITY`] subtasks — [`PreparedSchedule::new`]
//! validates the invariant up front and larger graphs keep using the classic
//! scheduler entry points.
//!
//! The kernels replicate the classic implementations *exactly* — same
//! traversal orders, same tie-breaking comparators, same chunk semantics
//! (mask iteration is ascending by construction, matching the classic
//! ascending-id vectors) — so their results are bit-for-bit identical to the
//! [`executor`](crate::executor)-based path. The differential oracle corpus
//! (`drhw-oracle`) enforces that equivalence on every CI run.

use drhw_model::{
    ConfigId, GraphAnalysis, InitialSchedule, PeAssignment, Platform, SubtaskGraph, SubtaskId,
    TileId, TileSlot, Time,
};

use crate::error::PrefetchError;
use crate::hybrid::HybridPrefetch;
use crate::inter_task::InterTaskWindow;
use crate::mask::SlotMask;
use crate::replacement::ReplacementPolicy;
use crate::reuse::TileContents;

/// Sentinel in the flat per-PE predecessor table: no predecessor.
const NO_PRED: u32 = u32::MAX;

/// One (graph, initial schedule, platform) triple prepared for repeated
/// evaluation: every activation-independent artifact is computed once here,
/// flattened into index-addressed arrays, and borrowed by the per-activation
/// kernels.
#[derive(Debug)]
pub struct PreparedSchedule<'a> {
    graph: &'a SubtaskGraph,
    platform: &'a Platform,
    schedule: InitialSchedule,
    analysis: GraphAnalysis,
    /// Combined (precedence + per-PE order) topological order, the traversal
    /// order of the timing loop, as flat subtask indices.
    topo: Vec<u32>,
    /// Per-subtask execution time (SoA mirror of `graph.subtask(..)`).
    exec_times: Vec<Time>,
    /// Per-subtask criticality weight (SoA mirror of `analysis.weight(..)`).
    weights: Vec<Time>,
    /// Every subtask index ordered by decreasing weight (ties: ascending
    /// index) — the criticality order the windowed kernels load in.
    /// Restricting this fixed order to any pending subset reproduces the
    /// per-call sort the classic pipeline performs.
    weight_order: Vec<u32>,
    /// Per-subtask required configuration.
    required: Vec<Option<ConfigId>>,
    /// The subtask scheduled immediately before each subtask on the same PE
    /// ([`NO_PRED`] = none).
    pred_on_pe: Vec<u32>,
    /// All timing dependencies of each subtask (graph predecessors plus the
    /// PE predecessor) as one mask: "every dependency timed" is one `AND`.
    dep_masks: Vec<SlotMask>,
    /// CSR offsets into `pred_ids`, one entry per subtask plus a tail.
    pred_offsets: Vec<u32>,
    /// CSR-packed dependency lists (graph predecessors, then the PE
    /// predecessor) — the ids the ready-time `max` folds over.
    pred_ids: Vec<u32>,
    /// CSR offsets into `slot_subtasks`, one entry per slot plus a tail.
    slot_offsets: Vec<u32>,
    /// CSR-packed subtasks of each slot, in schedule order.
    slot_subtasks: Vec<u32>,
    /// Makespan of the schedule under zero reconfiguration latency.
    ideal: Time,
    /// First subtask executed on each abstract tile slot.
    first_on_slot: Vec<Option<SubtaskId>>,
    /// The configuration each slot wants to find already loaded (the one of
    /// its first DRHW subtask).
    desired_configs: Vec<Option<ConfigId>>,
    /// `desired_configs` flattened in slot order (the replacement module's
    /// "wanted" list).
    wanted_configs: Vec<ConfigId>,
    /// The configuration each slot's tile holds after the task ran (the one
    /// of its last DRHW subtask).
    last_config_on_slot: Vec<Option<ConfigId>>,
    /// Number of DRHW subtasks in the graph.
    drhw_count: usize,
}

impl<'a> PreparedSchedule<'a> {
    /// Prepares a schedule for repeated evaluation.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is invalid, has more subtasks than the
    /// [`SlotMask`] width ([`PrefetchError::ExceedsMaskWidth`]), or the
    /// schedule needs more tile slots than the platform has tiles.
    pub fn new(
        graph: &'a SubtaskGraph,
        schedule: InitialSchedule,
        platform: &'a Platform,
    ) -> Result<Self, PrefetchError> {
        graph.validate()?;
        let n = graph.len();
        if !SlotMask::fits(n) {
            return Err(PrefetchError::ExceedsMaskWidth {
                subtasks: n,
                capacity: SlotMask::CAPACITY,
            });
        }
        if schedule.slot_count() > platform.tile_count() {
            return Err(PrefetchError::NotEnoughTiles {
                required: schedule.slot_count(),
                available: platform.tile_count(),
            });
        }
        let analysis = GraphAnalysis::new(graph)?;
        let ideal = schedule.ideal_timing(graph)?.makespan();
        let topo: Vec<u32> = schedule
            .combined_topological_order(graph)?
            .iter()
            .map(|id| id.index() as u32)
            .collect();

        let mut exec_times = Vec::with_capacity(n);
        let mut weights = Vec::with_capacity(n);
        let mut required = Vec::with_capacity(n);
        let mut pred_on_pe = Vec::with_capacity(n);
        let mut dep_masks = Vec::with_capacity(n);
        let mut pred_offsets = Vec::with_capacity(n + 1);
        let mut pred_ids = Vec::new();
        pred_offsets.push(0u32);
        for id in graph.ids() {
            exec_times.push(graph.subtask(id).exec_time());
            weights.push(analysis.weight(id));
            required.push(graph.required_config(id));
            let mut deps = SlotMask::empty();
            for &p in graph.predecessors(id) {
                pred_ids.push(p.index() as u32);
                deps.insert(p.index());
            }
            match schedule.predecessor_on_pe(id) {
                Some(prev) => {
                    pred_ids.push(prev.index() as u32);
                    deps.insert(prev.index());
                    pred_on_pe.push(prev.index() as u32);
                }
                None => pred_on_pe.push(NO_PRED),
            }
            pred_offsets.push(pred_ids.len() as u32);
            dep_masks.push(deps);
        }

        let slots = schedule.slot_count();
        let mut slot_offsets = Vec::with_capacity(slots + 1);
        let mut slot_subtasks = Vec::new();
        let mut first_on_slot = Vec::with_capacity(slots);
        let mut last_config_on_slot = Vec::with_capacity(slots);
        slot_offsets.push(0u32);
        for s in 0..slots {
            let on_slot = schedule.subtasks_on(PeAssignment::Tile(TileSlot::new(s)));
            slot_subtasks.extend(on_slot.iter().map(|id| id.index() as u32));
            slot_offsets.push(slot_subtasks.len() as u32);
            first_on_slot.push(schedule.first_on_slot(TileSlot::new(s)));
            last_config_on_slot.push(
                on_slot
                    .iter()
                    .rev()
                    .find_map(|&id| graph.required_config(id)),
            );
        }
        let desired_configs: Vec<Option<ConfigId>> = first_on_slot
            .iter()
            .map(|first| first.and_then(|id| graph.required_config(id)))
            .collect();
        let wanted_configs = desired_configs.iter().flatten().copied().collect();
        let drhw_count = graph.drhw_subtasks().len();
        let mut weight_order: Vec<u32> = (0..n as u32).collect();
        weight_order.sort_unstable_by(|&a, &b| {
            weights[b as usize]
                .cmp(&weights[a as usize])
                .then(a.cmp(&b))
        });
        Ok(PreparedSchedule {
            graph,
            platform,
            schedule,
            analysis,
            topo,
            exec_times,
            weights,
            weight_order,
            required,
            pred_on_pe,
            dep_masks,
            pred_offsets,
            pred_ids,
            slot_offsets,
            slot_subtasks,
            ideal,
            first_on_slot,
            desired_configs,
            wanted_configs,
            last_config_on_slot,
            drhw_count,
        })
    }

    /// The graph being scheduled.
    pub fn graph(&self) -> &'a SubtaskGraph {
        self.graph
    }

    /// The prepared initial schedule.
    pub fn schedule(&self) -> &InitialSchedule {
        &self.schedule
    }

    /// The target platform.
    pub fn platform(&self) -> &'a Platform {
        self.platform
    }

    /// The precedence-only analysis (criticality weights).
    pub fn analysis(&self) -> &GraphAnalysis {
        &self.analysis
    }

    /// Makespan of the schedule with zero reconfiguration latency.
    pub fn ideal_makespan(&self) -> Time {
        self.ideal
    }

    /// Number of DRHW subtasks in the graph.
    pub fn drhw_count(&self) -> usize {
        self.drhw_count
    }

    /// Chooses a physical tile for every abstract slot, writing the mapping
    /// into `scratch.slot_to_tile`. Replicates
    /// [`assign_tiles_protecting`](crate::assign_tiles_protecting) exactly;
    /// `protected` must be sorted (it is only binary-searched).
    ///
    /// # Errors
    ///
    /// Returns [`PrefetchError::NotEnoughTiles`] if the schedule uses more
    /// slots than `contents` tracks tiles.
    pub fn assign_tiles_into(
        &self,
        contents: &TileContents,
        policy: ReplacementPolicy,
        scratch: &mut Scratch,
    ) -> Result<(), PrefetchError> {
        let slots = self.schedule.slot_count();
        let tiles = contents.tile_count();
        if slots > tiles {
            return Err(PrefetchError::NotEnoughTiles {
                required: slots,
                available: tiles,
            });
        }
        let Scratch {
            slot_to_tile,
            assigned,
            taken,
            free,
            free_keyed,
            protected,
            ..
        } = scratch;
        slot_to_tile.clear();
        match policy {
            ReplacementPolicy::Direct => {
                slot_to_tile.extend((0..slots).map(TileId::new));
            }
            ReplacementPolicy::LeastRecentlyUsed => {
                free.clear();
                free.extend((0..tiles).map(TileId::new));
                // The (last_used, index) key is a strict total order, so the
                // unstable sort is deterministic and matches the classic
                // stable sort without its merge buffer.
                free.sort_unstable_by_key(|&t| (contents.last_used(t), t.index()));
                slot_to_tile.extend(free.iter().take(slots).copied());
            }
            ReplacementPolicy::ReuseAware => {
                assigned.clear();
                assigned.resize(slots, None);
                taken.clear();
                taken.resize(tiles, false);
                // Pass 1: give every slot a tile that already holds its first
                // configuration (greedy, slot order, lowest matching tile).
                for (slot, desired) in self.desired_configs.iter().enumerate() {
                    let Some(config) = desired else { continue };
                    let hit = (0..tiles)
                        .map(TileId::new)
                        .find(|t| !taken[t.index()] && contents.config_on(*t) == Some(*config));
                    if let Some(tile) = hit {
                        assigned[slot] = Some(tile);
                        taken[tile.index()] = true;
                    }
                }
                // Pass 2: fill the rest with free tiles, evicting tiles whose
                // content nobody wants first, oldest first. The eviction key
                // is computed once per tile (not per comparison), then the
                // tuple order — with the tile index as final tiebreak — gives
                // the same deterministic total order as the classic sort.
                free_keyed.clear();
                free_keyed.extend(
                    (0..tiles)
                        .map(TileId::new)
                        .filter(|t| !taken[t.index()])
                        .map(|t| {
                            let held = contents.config_on(t);
                            let holds_wanted = held
                                .map(|c| self.wanted_configs.contains(&c))
                                .unwrap_or(false);
                            let holds_protected = held
                                .map(|c| protected.binary_search(&c).is_ok())
                                .unwrap_or(false);
                            (holds_wanted, holds_protected, contents.last_used(t), t)
                        }),
                );
                free_keyed.sort_unstable_by_key(|&(wanted, prot, used, t)| {
                    (wanted, prot, used, t.index())
                });
                let mut free_iter = free_keyed.iter().map(|&(_, _, _, t)| t);
                slot_to_tile.extend(assigned.iter().map(|slot_tile| {
                    slot_tile.unwrap_or_else(|| {
                        free_iter
                            .next()
                            .expect("slot count was checked against tile count")
                    })
                }));
            }
        }
        Ok(())
    }

    /// Marks in `scratch.resident` the subtasks that can reuse a
    /// configuration already resident on the physical tile their slot is
    /// mapped to (per `scratch.slot_to_tile`), returning how many there are.
    /// Replicates [`reusable_subtasks`](crate::reusable_subtasks).
    pub fn mark_reusable(&self, contents: &TileContents, scratch: &mut Scratch) -> usize {
        scratch.resident.clear();
        let mut count = 0usize;
        for (slot, first) in self.first_on_slot.iter().enumerate() {
            let Some(first) = first else { continue };
            let Some(required) = self.required[first.index()] else {
                continue;
            };
            if slot < scratch.slot_to_tile.len()
                && contents.config_on(scratch.slot_to_tile[slot]) == Some(required)
            {
                scratch.resident.insert(first.index());
                count += 1;
            }
        }
        count
    }

    /// Clears the residency mask (for policies that cannot exploit reuse).
    pub fn clear_residency(&self, scratch: &mut Scratch) {
        scratch.resident.clear();
    }

    /// Applies the effect of executing this schedule to the tile contents:
    /// every slot's tile ends up holding the configuration of the last DRHW
    /// subtask executed on it, stamped `now`. Replicates
    /// [`apply_schedule_to_contents`](crate::apply_schedule_to_contents)
    /// against `scratch.slot_to_tile`.
    pub fn apply_to_contents(&self, contents: &mut TileContents, scratch: &Scratch, now: Time) {
        for (slot, &tile) in scratch.slot_to_tile.iter().enumerate() {
            if let Some(config) = self.last_config_on_slot[slot] {
                contents.record_load(tile, config, now);
            }
        }
    }

    /// Computes which subtasks need a configuration load given a residency
    /// mask, honouring intra-task reuse. Replicates the private
    /// `compute_needs_load` of [`PrefetchProblem`](crate::PrefetchProblem)
    /// over the CSR slot tables.
    fn needs_load_mask(&self, resident: SlotMask) -> SlotMask {
        let mut needs = SlotMask::empty();
        for slot in 0..self.slot_offsets.len() - 1 {
            let range = self.slot_offsets[slot] as usize..self.slot_offsets[slot + 1] as usize;
            let mut current: Option<ConfigId> = None;
            for (position, &raw) in self.slot_subtasks[range].iter().enumerate() {
                let idx = raw as usize;
                let Some(required) = self.required[idx] else {
                    continue;
                };
                let externally_resident = position == 0 && resident.contains(idx);
                let later_resident = position > 0 && resident.contains(idx) && current.is_none();
                if Some(required) == current || externally_resident || later_resident {
                    current = Some(required);
                    continue;
                }
                needs.insert(idx);
                current = Some(required);
            }
        }
        needs
    }

    /// Scores the on-demand (no-prefetch) policy with nothing resident.
    ///
    /// The outcome is activation-independent, so callers normally invoke this
    /// once at preparation time and cache the summary.
    ///
    /// # Errors
    ///
    /// Propagates timing-loop errors.
    pub fn evaluate_on_demand_cold(
        &self,
        scratch: &mut Scratch,
    ) -> Result<ExecSummary, PrefetchError> {
        scratch.resident.clear();
        let needs = self.needs_load_mask(SlotMask::EMPTY);
        simulate_core(
            self,
            needs,
            Strategy::OnDemand,
            Time::ZERO,
            Time::ZERO,
            &mut scratch.exec_finish,
            &mut scratch.loaded_at,
        )
    }

    /// Scores the run-time list-scheduling policy against the residency mask
    /// currently in `scratch.resident`.
    ///
    /// # Errors
    ///
    /// Propagates timing-loop errors.
    pub fn evaluate_list(&self, scratch: &mut Scratch) -> Result<ExecSummary, PrefetchError> {
        let needs = self.needs_load_mask(scratch.resident);
        simulate_core(
            self,
            needs,
            Strategy::ListByWeight,
            Time::ZERO,
            Time::ZERO,
            &mut scratch.exec_finish,
            &mut scratch.loaded_at,
        )
    }

    /// Scores the run-time policy with the §6 inter-task optimization: the
    /// most critical loads that fit in `window` are preloaded before the task
    /// starts. Returns the body summary and the number of preloaded loads
    /// (the caller adds them to the performed-load count and derives the next
    /// window from the summary's trailing idle time).
    ///
    /// # Errors
    ///
    /// Propagates timing-loop errors.
    pub fn evaluate_inter_task(
        &self,
        window: InterTaskWindow,
        scratch: &mut Scratch,
    ) -> Result<(ExecSummary, usize), PrefetchError> {
        let latency = self.platform.reconfig_latency();
        let needs_base = self.needs_load_mask(scratch.resident);
        // The pending loads by decreasing criticality weight — the order the
        // initialization phase would load them in. Filtering the precomputed
        // whole-graph weight order down to the pending set gives exactly the
        // list the classic pipeline sorts per call.
        let order_a = &mut scratch.order_a;
        order_a.clear();
        order_a.extend(
            self.weight_order
                .iter()
                .filter(|&&idx| needs_base.contains(idx as usize))
                .map(|&idx| SubtaskId::new(idx as usize)),
        );
        let fit = window.whole_loads(latency).min(order_a.len());
        // Extended residency: what the preloads leave on the tiles.
        let mut aux_resident = scratch.resident;
        for &id in order_a.iter().take(fit) {
            aux_resident.insert(id.index());
        }
        let needs_aux = self.needs_load_mask(aux_resident);
        let summary = simulate_core(
            self,
            needs_aux,
            Strategy::ListByWeight,
            Time::ZERO,
            Time::ZERO,
            &mut scratch.exec_finish,
            &mut scratch.loaded_at,
        )?;
        Ok((summary, fit))
    }

    /// Scores one activation of the hybrid heuristic against the residency
    /// mask currently in `scratch.resident`. Replicates
    /// [`HybridPrefetch::evaluate`] (runtime decision + body simulation).
    ///
    /// # Errors
    ///
    /// Propagates timing-loop errors.
    pub fn evaluate_hybrid(
        &self,
        hybrid: &HybridPrefetch,
        window: InterTaskWindow,
        scratch: &mut Scratch,
    ) -> Result<HybridSummary, PrefetchError> {
        let latency = self.platform.reconfig_latency();
        let critical = hybrid.critical();
        let resident = scratch.resident;
        let needs_base = self.needs_load_mask(resident);
        // Assumed residency: the critical set on top of what is resident.
        let mut aux_resident = resident;
        for &id in critical.critical_subtasks() {
            aux_resident.insert(id.index());
        }
        let needs_aux = self.needs_load_mask(aux_resident);

        // Critical subtasks whose residency assumption must be realised by
        // the initialization phase, most critical first; the prefix that fits
        // in the inter-task window is preloaded for free.
        let order_a = &mut scratch.order_a;
        order_a.clear();
        order_a.extend(
            critical
                .critical_subtasks()
                .iter()
                .copied()
                .filter(|id| needs_base.contains(id.index()) && !needs_aux.contains(id.index())),
        );
        let preloaded = window.whole_loads(latency).min(order_a.len());
        let init_count = order_a.len() - preloaded;
        let init_duration = latency * init_count as u64;

        // Body loads: the stored order minus cancelled loads, plus any load
        // the stored order does not cover, in subtask-id order.
        let order_b = &mut scratch.order_b;
        order_b.clear();
        order_b.extend(
            critical
                .stored_load_order()
                .iter()
                .copied()
                .filter(|id| needs_aux.contains(id.index())),
        );
        for index in needs_aux.iter() {
            let id = SubtaskId::new(index);
            if !order_b.contains(&id) {
                order_b.push(id);
            }
        }
        let cancelled = critical
            .stored_load_order()
            .iter()
            .filter(|id| !needs_aux.contains(id.index()))
            .count();

        // During the body the initialization and preloaded configurations are
        // resident, and nothing starts before the initialization phase ends.
        let mut body_resident = resident;
        for &id in order_a.iter() {
            body_resident.insert(id.index());
        }
        let needs_body = self.needs_load_mask(body_resident);
        // The classic path validates the stored order against the body
        // problem's loads; replicate that contract.
        if order_b.len() != needs_body.len() {
            let id = order_b
                .iter()
                .copied()
                .find(|id| !needs_body.contains(id.index()))
                .unwrap_or(SubtaskId::new(0));
            return Err(PrefetchError::InvalidLoadOrder { id });
        }
        if let Some(&id) = order_b.iter().find(|id| !needs_body.contains(id.index())) {
            return Err(PrefetchError::InvalidLoadOrder { id });
        }

        let summary = simulate_core(
            self,
            needs_body,
            Strategy::Fixed(order_b),
            init_duration,
            init_duration,
            &mut scratch.exec_finish,
            &mut scratch.loaded_at,
        )?;
        Ok(HybridSummary {
            penalty: summary.penalty,
            loads_performed: init_count + scratch.order_b.len(),
            preloaded,
            cancelled,
            trailing_port_idle: summary.trailing_port_idle,
        })
    }
}

/// What the per-activation timing loop reports back to the simulation:
/// everything the aggregate statistics need, without materialising the timed
/// schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecSummary {
    /// Reconfiguration penalty versus the ideal makespan.
    pub penalty: Time,
    /// Number of loads the reconfiguration port performed.
    pub loads: usize,
    /// Idle time the port offers at the end of the task (for the inter-task
    /// optimization of the next activation).
    pub trailing_port_idle: Time,
}

/// The hybrid policy's per-activation summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HybridSummary {
    /// Reconfiguration penalty (initialization phase plus body stalls).
    pub penalty: Time,
    /// Loads performed by this activation (initialization + body, excluding
    /// loads hidden in the previous task's window).
    pub loads_performed: usize,
    /// Critical loads hidden entirely inside the previous task's idle window.
    pub preloaded: usize,
    /// Stored loads cancelled because their configuration was resident.
    pub cancelled: usize,
    /// Idle time the port offers at the end of the task.
    pub trailing_port_idle: Time,
}

/// Every buffer the per-activation kernels write into. One instance per
/// worker thread; create it once, [`reserve`](Scratch::reserve) it to the
/// largest graph it will see, and reuse it for every activation — the kernels
/// only `clear()` and refill, so a warm loop never touches the allocator.
///
/// The set-shaped state (residency, needs-load, pending loads) lives in
/// [`SlotMask`] words, not here; only the buffers that genuinely need heap
/// backing remain — the load-order lists, the flat finish/load timestamp
/// tables (valid only under the timing loop's internal masks), and the
/// replacement-kernel working vectors.
#[derive(Debug, Default)]
pub struct Scratch {
    /// Residency mask consumed by the evaluation kernels (one bit per
    /// subtask). Fill via [`PreparedSchedule::mark_reusable`] or
    /// [`PreparedSchedule::clear_residency`].
    pub(crate) resident: SlotMask,
    /// Weight-ordered load list / hybrid initialization loads.
    order_a: Vec<SubtaskId>,
    /// Hybrid body load order.
    order_b: Vec<SubtaskId>,
    /// Execution finish times of the timing loop; entries are only
    /// meaningful under the loop's internal `timed` mask.
    exec_finish: Vec<Time>,
    /// Instant each load completes; entries are only meaningful under the
    /// loop's internal `loaded` mask.
    loaded_at: Vec<Time>,
    /// The slot-to-tile mapping the replacement kernel produces.
    pub(crate) slot_to_tile: Vec<TileId>,
    /// Per-slot assignment working buffer of the reuse-aware mapping.
    assigned: Vec<Option<TileId>>,
    /// Per-tile "already taken" flags of the reuse-aware mapping.
    taken: Vec<bool>,
    /// Free-tile candidate list of the replacement kernels.
    free: Vec<TileId>,
    /// Eviction-order keys of the reuse-aware mapping, precomputed once per
    /// tile so the sort comparator stays branch-free.
    free_keyed: Vec<(bool, bool, Time, TileId)>,
    /// Sorted configurations the upcoming tasks want kept resident.
    protected: Vec<ConfigId>,
}

impl Scratch {
    /// Creates an empty scratch. Buffers grow on first use; call
    /// [`reserve`](Scratch::reserve) to pre-size them and make even the first
    /// activation allocation-free.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Pre-sizes every buffer for graphs of up to `subtasks` subtasks,
    /// schedules of up to `slots` slots, platforms of up to `tiles` tiles and
    /// protected-configuration lists of up to `configs` entries.
    pub fn reserve(&mut self, subtasks: usize, slots: usize, tiles: usize, configs: usize) {
        self.order_a.reserve(subtasks);
        self.order_b.reserve(subtasks);
        self.exec_finish.reserve(subtasks);
        self.loaded_at.reserve(subtasks);
        self.slot_to_tile.reserve(slots.max(tiles));
        self.assigned.reserve(slots.max(tiles));
        self.taken.reserve(tiles);
        self.free.reserve(tiles);
        self.free_keyed.reserve(tiles);
        self.protected.reserve(configs);
    }

    /// The slot-to-tile mapping most recently produced by
    /// [`PreparedSchedule::assign_tiles_into`].
    pub fn slot_to_tile(&self) -> &[TileId] {
        &self.slot_to_tile
    }

    /// The residency mask most recently produced by
    /// [`PreparedSchedule::mark_reusable`] (or cleared by
    /// [`PreparedSchedule::clear_residency`]). Together with the inter-task
    /// window this is the *entire* activation-dependent input of the
    /// evaluation kernels, so callers can key memo tables on it.
    pub fn resident(&self) -> SlotMask {
        self.resident
    }

    /// Replaces the protected-configuration list (the configurations upcoming
    /// tasks will want, which the replacement kernel avoids evicting). The
    /// list is sorted and deduplicated in place.
    pub fn set_protected(&mut self, configs: impl IntoIterator<Item = ConfigId>) {
        self.protected.clear();
        self.protected.extend(configs);
        self.protected.sort_unstable();
        self.protected.dedup();
    }
}

/// How the port chooses its next load (mirror of the executor's
/// `LoadStrategy`, borrowing the fixed order from the scratch).
enum Strategy<'o> {
    Fixed(&'o [SubtaskId]),
    ListByWeight,
    OnDemand,
}

/// Earliest instant a subtask could start, ignoring its own load. `None`
/// while a dependency is untimed (one mask `AND` against the precomputed
/// dependency set, then a `max` fold over the CSR predecessor list).
#[inline]
fn ready_time(
    prepared: &PreparedSchedule<'_>,
    timed: SlotMask,
    exec_finish: &[Time],
    earliest_exec: Time,
    idx: usize,
) -> Option<Time> {
    if !prepared.dep_masks[idx].difference(timed).is_empty() {
        return None;
    }
    let mut ready = earliest_exec;
    let range = prepared.pred_offsets[idx] as usize..prepared.pred_offsets[idx + 1] as usize;
    for &p in &prepared.pred_ids[range] {
        ready = ready.max(exec_finish[p as usize]);
    }
    Some(ready)
}

/// Earliest instant the tile of `idx` can accept a load. `None` while its
/// previous occupant is untimed.
#[inline]
fn tile_available(
    prepared: &PreparedSchedule<'_>,
    timed: SlotMask,
    exec_finish: &[Time],
    idx: usize,
) -> Option<Time> {
    let prev = prepared.pred_on_pe[idx];
    if prev == NO_PRED {
        Some(Time::ZERO)
    } else if timed.contains(prev as usize) {
        Some(exec_finish[prev as usize])
    } else {
        None
    }
}

/// The timing loop shared by every strategy: a scratch-buffer replica of the
/// executor's `simulate` that reports only the aggregate summary instead of
/// materialising execution and load windows. The timed/loaded/pending sets
/// are register-resident bitmasks; `exec_finish`/`loaded_at` are flat
/// timestamp tables valid only under those masks.
fn simulate_core(
    prepared: &PreparedSchedule<'_>,
    needs: SlotMask,
    strategy: Strategy<'_>,
    earliest_exec: Time,
    earliest_port: Time,
    exec_finish: &mut Vec<Time>,
    loaded_at: &mut Vec<Time>,
) -> Result<ExecSummary, PrefetchError> {
    let latency = prepared.platform.reconfig_latency();
    let n = prepared.exec_times.len();

    if exec_finish.len() < n {
        exec_finish.resize(n, Time::ZERO);
    }
    if loaded_at.len() < n {
        loaded_at.resize(n, Time::ZERO);
    }
    let mut timed = SlotMask::empty();
    let mut loaded = SlotMask::empty();
    let mut pending = needs;
    let total_loads = needs.len();

    let mut port_free = earliest_port;
    let mut last_load_finish = Time::ZERO;
    let mut fixed_cursor = 0usize;
    let mut remaining_execs = n;
    let mut exec_makespan = Time::ZERO;

    while remaining_execs > 0 || !pending.is_empty() {
        let mut progress = false;

        // Phase 1: schedule every execution whose dependencies are all timed.
        for &raw in &prepared.topo {
            let idx = raw as usize;
            if timed.contains(idx) {
                continue;
            }
            let Some(ready) = ready_time(prepared, timed, exec_finish, earliest_exec, idx) else {
                continue;
            };
            if needs.contains(idx) && !loaded.contains(idx) {
                continue;
            }
            let start = if loaded.contains(idx) {
                ready.max(loaded_at[idx])
            } else {
                ready
            };
            let finish = start + prepared.exec_times[idx];
            exec_finish[idx] = finish;
            timed.insert(idx);
            exec_makespan = exec_makespan.max(finish);
            remaining_execs -= 1;
            progress = true;
        }

        // Phase 2: let the port start (at most) one more load.
        if !pending.is_empty() {
            let pick = match &strategy {
                Strategy::Fixed(order) => {
                    while fixed_cursor < order.len() && loaded.contains(order[fixed_cursor].index())
                    {
                        fixed_cursor += 1;
                    }
                    order.get(fixed_cursor).and_then(|&next| {
                        tile_available(prepared, timed, exec_finish, next.index())
                            .map(|t| (next.index(), t))
                    })
                }
                Strategy::ListByWeight => {
                    // Horizon: earliest instant any known-available load could
                    // actually start.
                    let mut earliest: Option<Time> = None;
                    for idx in pending.iter() {
                        if let Some(t) = tile_available(prepared, timed, exec_finish, idx) {
                            earliest = Some(earliest.map_or(t, |e| e.min(t)));
                        }
                    }
                    earliest.and_then(|e| {
                        let horizon = e.max(port_free);
                        let mut best: Option<(usize, Time)> = None;
                        for idx in pending.iter() {
                            let Some(t) = tile_available(prepared, timed, exec_finish, idx) else {
                                continue;
                            };
                            if t > horizon {
                                continue;
                            }
                            // Replicates `max_by(weight asc, index desc)`:
                            // higher weight wins, lower index breaks ties.
                            best = match best {
                                None => Some((idx, t)),
                                Some((bidx, _))
                                    if prepared.weights[idx] > prepared.weights[bidx]
                                        || (prepared.weights[idx] == prepared.weights[bidx]
                                            && idx < bidx) =>
                                {
                                    Some((idx, t))
                                }
                                keep => keep,
                            };
                        }
                        best
                    })
                }
                Strategy::OnDemand => {
                    // Replicates `min_by(ready asc, weight desc, index asc)`:
                    // the earliest requested load wins, most critical first.
                    let mut best: Option<(usize, Time)> = None;
                    for idx in pending.iter() {
                        let Some(t) = ready_time(prepared, timed, exec_finish, earliest_exec, idx)
                        else {
                            continue;
                        };
                        best = match best {
                            None => Some((idx, t)),
                            Some((bidx, bt))
                                if t < bt
                                    || (t == bt
                                        && prepared.weights[idx] > prepared.weights[bidx])
                                    || (t == bt
                                        && prepared.weights[idx] == prepared.weights[bidx]
                                        && idx < bidx) =>
                            {
                                Some((idx, t))
                            }
                            keep => keep,
                        };
                    }
                    best
                }
            };
            if let Some((idx, available)) = pick {
                let start = port_free.max(available);
                let finish = start + latency;
                loaded_at[idx] = finish;
                loaded.insert(idx);
                port_free = finish;
                last_load_finish = finish;
                pending.remove(idx);
                progress = true;
            }
        }

        if !progress {
            return Err(PrefetchError::DeadlockedOrder);
        }
    }

    Ok(ExecSummary {
        penalty: exec_makespan.saturating_sub(prepared.ideal),
        loads: total_loads,
        trailing_port_idle: exec_makespan.saturating_sub(last_load_finish),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{simulate, LoadStrategy};
    use crate::{
        apply_schedule_to_contents, assign_tiles_protecting, plan_preloads, reusable_subtasks,
        ListScheduler, OnDemandScheduler, PrefetchProblem, PrefetchScheduler, TileMapping,
    };
    use drhw_model::Subtask;
    use std::collections::BTreeSet;

    /// The Fig. 3 example plus an extra slot-sharing tail, to exercise
    /// intra-task reuse and tile-occupancy constraints.
    fn fig3() -> (SubtaskGraph, InitialSchedule, Platform) {
        let mut g = SubtaskGraph::new("fig3");
        let s1 = g.add_subtask(Subtask::new("1", Time::from_millis(10), ConfigId::new(1)));
        let s2 = g.add_subtask(Subtask::new("2", Time::from_millis(12), ConfigId::new(2)));
        let s3 = g.add_subtask(Subtask::new("3", Time::from_millis(6), ConfigId::new(3)));
        let s4 = g.add_subtask(Subtask::new("4", Time::from_millis(8), ConfigId::new(4)));
        g.add_dependency(s1, s2).unwrap();
        g.add_dependency(s1, s3).unwrap();
        g.add_dependency(s3, s4).unwrap();
        let schedule = InitialSchedule::from_assignment(
            &g,
            vec![
                PeAssignment::Tile(TileSlot::new(0)),
                PeAssignment::Tile(TileSlot::new(1)),
                PeAssignment::Tile(TileSlot::new(2)),
                PeAssignment::Tile(TileSlot::new(0)),
            ],
        )
        .unwrap();
        let platform = Platform::virtex_like(3).unwrap();
        (g, schedule, platform)
    }

    fn resident_masks(n: usize) -> Vec<BTreeSet<SubtaskId>> {
        // Empty, every singleton, and the full set.
        let mut masks = vec![BTreeSet::new()];
        for i in 0..n {
            masks.push([SubtaskId::new(i)].into_iter().collect());
        }
        masks.push((0..n).map(SubtaskId::new).collect());
        masks
    }

    #[test]
    fn list_kernel_matches_the_classic_list_scheduler() {
        let (g, schedule, platform) = fig3();
        let prepared = PreparedSchedule::new(&g, schedule.clone(), &platform).unwrap();
        let mut scratch = Scratch::new();
        for resident in resident_masks(g.len()) {
            let problem =
                PrefetchProblem::with_resident(&g, &schedule, &platform, &resident).unwrap();
            let classic = ListScheduler::new().schedule(&problem).unwrap();
            prepared.clear_residency(&mut scratch);
            for &id in &resident {
                scratch.resident.insert(id.index());
            }
            let summary = prepared.evaluate_list(&mut scratch).unwrap();
            assert_eq!(summary.penalty, classic.penalty(), "{resident:?}");
            assert_eq!(summary.loads, classic.load_count(), "{resident:?}");
            assert_eq!(
                summary.trailing_port_idle,
                classic.trailing_port_idle(),
                "{resident:?}"
            );
        }
    }

    #[test]
    fn on_demand_kernel_matches_the_classic_scheduler() {
        let (g, schedule, platform) = fig3();
        let prepared = PreparedSchedule::new(&g, schedule.clone(), &platform).unwrap();
        let mut scratch = Scratch::new();
        let problem = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        let classic = OnDemandScheduler::new().schedule(&problem).unwrap();
        let summary = prepared.evaluate_on_demand_cold(&mut scratch).unwrap();
        assert_eq!(summary.penalty, classic.penalty());
        assert_eq!(summary.loads, classic.load_count());
    }

    #[test]
    fn inter_task_kernel_matches_the_classic_pipeline() {
        let (g, schedule, platform) = fig3();
        let prepared = PreparedSchedule::new(&g, schedule.clone(), &platform).unwrap();
        let mut scratch = Scratch::new();
        let latency = platform.reconfig_latency();
        for resident in resident_masks(g.len()) {
            for window_ms in [0u64, 4, 9, 100] {
                let window = InterTaskWindow::new(Time::from_millis(window_ms));
                // Classic pipeline, as run_iteration used to do it.
                let base =
                    PrefetchProblem::with_resident(&g, &schedule, &platform, &resident).unwrap();
                let (preloaded, _) = plan_preloads(&base.loads_by_weight_desc(), window, latency);
                let mut extended = resident.clone();
                extended.extend(preloaded.iter().copied());
                let problem =
                    PrefetchProblem::with_resident(&g, &schedule, &platform, &extended).unwrap();
                let classic = ListScheduler::new().schedule(&problem).unwrap();

                prepared.clear_residency(&mut scratch);
                for &id in &resident {
                    scratch.resident.insert(id.index());
                }
                let (summary, fit) = prepared.evaluate_inter_task(window, &mut scratch).unwrap();
                assert_eq!(fit, preloaded.len(), "{resident:?} w={window_ms}");
                assert_eq!(
                    summary.penalty,
                    classic.penalty(),
                    "{resident:?} w={window_ms}"
                );
                assert_eq!(
                    summary.loads,
                    classic.load_count(),
                    "{resident:?} w={window_ms}"
                );
                assert_eq!(
                    summary.trailing_port_idle,
                    classic.trailing_port_idle(),
                    "{resident:?} w={window_ms}"
                );
            }
        }
    }

    #[test]
    fn hybrid_kernel_matches_the_classic_evaluate() {
        let (g, schedule, platform) = fig3();
        let hybrid = HybridPrefetch::compute(&g, &schedule, &platform).unwrap();
        let prepared = PreparedSchedule::new(&g, schedule.clone(), &platform).unwrap();
        let mut scratch = Scratch::new();
        for resident in resident_masks(g.len()) {
            for window_ms in [0u64, 4, 9, 100] {
                let window = InterTaskWindow::new(Time::from_millis(window_ms));
                let classic = hybrid
                    .evaluate(&g, &schedule, &platform, &resident, window)
                    .unwrap();
                prepared.clear_residency(&mut scratch);
                for &id in &resident {
                    scratch.resident.insert(id.index());
                }
                let summary = prepared
                    .evaluate_hybrid(&hybrid, window, &mut scratch)
                    .unwrap();
                assert_eq!(
                    summary.penalty,
                    classic.penalty(),
                    "{resident:?} w={window_ms}"
                );
                assert_eq!(
                    summary.loads_performed,
                    classic.loads_performed(),
                    "{resident:?} w={window_ms}"
                );
                assert_eq!(
                    summary.preloaded,
                    classic.decision().preloaded.len(),
                    "{resident:?} w={window_ms}"
                );
                assert_eq!(
                    summary.cancelled,
                    classic.decision().cancelled_loads.len(),
                    "{resident:?} w={window_ms}"
                );
                assert_eq!(
                    summary.trailing_port_idle,
                    classic.trailing_window().remaining(),
                    "{resident:?} w={window_ms}"
                );
            }
        }
    }

    #[test]
    fn replacement_and_reuse_kernels_match_the_classic_modules() {
        let (g, schedule, platform) = fig3();
        let prepared = PreparedSchedule::new(&g, schedule.clone(), &platform).unwrap();
        let mut scratch = Scratch::new();
        let mut contents = TileContents::new(platform.tile_count());
        // A few activations' worth of evolving contents.
        for step in 0..4u64 {
            for policy in [
                ReplacementPolicy::ReuseAware,
                ReplacementPolicy::LeastRecentlyUsed,
                ReplacementPolicy::Direct,
            ] {
                let protected: BTreeSet<ConfigId> =
                    [ConfigId::new(2), ConfigId::new(7)].into_iter().collect();
                let classic =
                    assign_tiles_protecting(&g, &schedule, &contents, policy, &protected).unwrap();
                scratch.set_protected(protected.iter().copied());
                prepared
                    .assign_tiles_into(&contents, policy, &mut scratch)
                    .unwrap();
                let tiles: Vec<TileId> = (0..classic.slot_count())
                    .map(|s| classic.tile_of(TileSlot::new(s)))
                    .collect();
                assert_eq!(scratch.slot_to_tile(), &tiles[..], "{policy} step {step}");

                let classic_resident = reusable_subtasks(&g, &schedule, &classic, &contents);
                let count = prepared.mark_reusable(&contents, &mut scratch);
                assert_eq!(count, classic_resident.len(), "{policy} step {step}");
                for id in g.ids() {
                    assert_eq!(
                        scratch.resident.contains(id.index()),
                        classic_resident.contains(&id),
                        "{policy} step {step} {id}"
                    );
                }
            }
            // Advance the contents the classic way and via the kernel; both
            // must agree.
            let mapping = assign_tiles_protecting(
                &g,
                &schedule,
                &contents,
                ReplacementPolicy::ReuseAware,
                &BTreeSet::new(),
            )
            .unwrap();
            let mut classic_contents = contents.clone();
            apply_schedule_to_contents(
                &g,
                &schedule,
                &mapping,
                &mut classic_contents,
                Time::from_millis(10 * (step + 1)),
            );
            scratch.set_protected(std::iter::empty());
            prepared
                .assign_tiles_into(&contents, ReplacementPolicy::ReuseAware, &mut scratch)
                .unwrap();
            prepared.apply_to_contents(&mut contents, &scratch, Time::from_millis(10 * (step + 1)));
            assert_eq!(contents, classic_contents, "step {step}");
        }
    }

    #[test]
    fn fixed_strategy_matches_the_classic_executor() {
        let (g, schedule, platform) = fig3();
        let prepared = PreparedSchedule::new(&g, schedule.clone(), &platform).unwrap();
        let problem = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        let list = ListScheduler::new().schedule(&problem).unwrap();
        let replay = simulate(&problem, LoadStrategy::FixedOrder(list.load_order())).unwrap();
        // Drive the core directly with the same fixed order.
        let mut scratch = Scratch::new();
        prepared.clear_residency(&mut scratch);
        let needs = prepared.needs_load_mask(scratch.resident);
        let summary = simulate_core(
            &prepared,
            needs,
            Strategy::Fixed(list.load_order()),
            Time::ZERO,
            Time::ZERO,
            &mut scratch.exec_finish,
            &mut scratch.loaded_at,
        )
        .unwrap();
        assert_eq!(summary.penalty, replay.penalty());
        assert_eq!(summary.loads, replay.load_count());
    }

    #[test]
    fn prepared_schedule_rejects_oversized_schedules() {
        let (g, schedule, _) = fig3();
        let small = Platform::virtex_like(2).unwrap();
        let err = PreparedSchedule::new(&g, schedule, &small).unwrap_err();
        assert_eq!(
            err,
            PrefetchError::NotEnoughTiles {
                required: 3,
                available: 2
            }
        );
    }

    #[test]
    fn prepared_schedule_rejects_graphs_wider_than_the_mask() {
        // 65 independent subtasks on one shared slot: a valid schedule, but
        // one more subtask than the bitmask kernels can track.
        let mut g = SubtaskGraph::new("wide");
        let n = SlotMask::CAPACITY + 1;
        for i in 0..n {
            g.add_subtask(Subtask::new(
                format!("s{i}"),
                Time::from_millis(1),
                ConfigId::new(i),
            ));
        }
        let schedule =
            InitialSchedule::from_assignment(&g, vec![PeAssignment::Tile(TileSlot::new(0)); n])
                .unwrap();
        let platform = Platform::virtex_like(3).unwrap();
        let err = PreparedSchedule::new(&g, schedule, &platform).unwrap_err();
        assert_eq!(
            err,
            PrefetchError::ExceedsMaskWidth {
                subtasks: n,
                capacity: SlotMask::CAPACITY
            }
        );
        assert!(err.to_string().contains("65 subtasks"));
    }

    #[test]
    fn accessors_expose_the_prepared_artifacts() {
        let (g, schedule, platform) = fig3();
        let ideal = schedule.ideal_timing(&g).unwrap().makespan();
        let prepared = PreparedSchedule::new(&g, schedule, &platform).unwrap();
        assert_eq!(prepared.ideal_makespan(), ideal);
        assert_eq!(prepared.drhw_count(), 4);
        assert_eq!(prepared.graph().len(), 4);
        assert_eq!(prepared.schedule().slot_count(), 3);
        assert_eq!(prepared.platform().tile_count(), 3);
        assert_eq!(prepared.analysis().topological_order().len(), 4);
        // TileMapping parity: identity mapping for the Direct policy.
        let mut scratch = Scratch::new();
        scratch.set_protected(std::iter::empty());
        let contents = TileContents::new(3);
        prepared
            .assign_tiles_into(&contents, ReplacementPolicy::Direct, &mut scratch)
            .unwrap();
        let identity = TileMapping::identity(3);
        for s in 0..3 {
            assert_eq!(
                scratch.slot_to_tile()[s],
                identity.tile_of(TileSlot::new(s))
            );
        }
    }
}
