//! The hybrid design-time/run-time prefetch heuristic — the paper's
//! contribution.
//!
//! * **Design-time phase** ([`HybridPrefetch::compute`]): for one initial
//!   schedule, determine the Critical Subtask set and store the optimal load
//!   order for the non-critical subtasks (see [`CriticalSetAnalysis`]).
//! * **Run-time phase** ([`HybridPrefetch::runtime_decision`] /
//!   [`HybridPrefetch::evaluate`]): once the reuse module reports which
//!   configurations are resident, load the missing critical subtasks during a
//!   short *initialization phase* (most critical first), cancel the stored
//!   loads whose configuration turned out to be resident, and start the stored
//!   schedule. No scheduling computation happens at run time — only set
//!   membership tests — which is what makes the heuristic scale.

use std::collections::BTreeSet;

use drhw_model::{InitialSchedule, Platform, SubtaskGraph, SubtaskId, Time};
use serde::{Deserialize, Serialize};

use crate::critical::CriticalSetAnalysis;
use crate::error::PrefetchError;
use crate::executor::{simulate, LoadStrategy};
use crate::inter_task::InterTaskWindow;
use crate::problem::{ExecutionResult, PrefetchProblem};
use crate::scheduler::PrefetchScheduler;

/// The design-time artifact of the hybrid heuristic for one initial schedule.
///
/// # Examples
///
/// ```
/// use std::collections::BTreeSet;
/// use drhw_model::{ConfigId, InitialSchedule, PeAssignment, Platform, Subtask, SubtaskGraph,
///     TileSlot, Time};
/// use drhw_prefetch::{HybridPrefetch, InterTaskWindow};
///
/// # fn main() -> Result<(), drhw_prefetch::PrefetchError> {
/// let mut g = SubtaskGraph::new("pair");
/// let a = g.add_subtask(Subtask::new("a", Time::from_millis(12), ConfigId::new(0)));
/// let b = g.add_subtask(Subtask::new("b", Time::from_millis(8), ConfigId::new(1)));
/// g.add_dependency(a, b)?;
/// let schedule = InitialSchedule::from_assignment(
///     &g,
///     vec![PeAssignment::Tile(TileSlot::new(0)), PeAssignment::Tile(TileSlot::new(1))],
/// )?;
/// let platform = Platform::virtex_like(2)?;
/// let hybrid = HybridPrefetch::compute(&g, &schedule, &platform)?;
/// // Only the entry subtask is critical; with nothing resident and no
/// // inter-task window the task pays exactly its initialization phase.
/// let outcome = hybrid.evaluate(&g, &schedule, &platform, &BTreeSet::new(),
///     InterTaskWindow::empty())?;
/// assert_eq!(outcome.penalty(), Time::from_millis(4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HybridPrefetch {
    critical: CriticalSetAnalysis,
}

/// The decision the run-time phase takes for one task activation. Computing it
/// involves only set operations — no scheduling — which is the entire point of
/// the hybrid split.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HybridRuntimeDecision {
    /// Critical subtasks that must be loaded during the initialization phase,
    /// most critical first. Loads already covered by the inter-task window are
    /// excluded.
    pub init_loads: Vec<SubtaskId>,
    /// Critical loads hidden entirely inside the previous task's idle window.
    pub preloaded: Vec<SubtaskId>,
    /// Loads of the stored design-time schedule that must still be performed.
    pub body_loads: Vec<SubtaskId>,
    /// Stored loads cancelled because their configuration is resident.
    pub cancelled_loads: Vec<SubtaskId>,
}

impl HybridRuntimeDecision {
    /// Total number of loads the reconfiguration port will perform.
    pub fn load_count(&self) -> usize {
        self.init_loads.len() + self.preloaded.len() + self.body_loads.len()
    }
}

/// What actually happens on the platform when a task runs under the hybrid
/// heuristic with a given residency state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HybridOutcome {
    decision: HybridRuntimeDecision,
    init_duration: Time,
    result: ExecutionResult,
}

impl HybridOutcome {
    /// The run-time decision that produced this outcome.
    pub fn decision(&self) -> &HybridRuntimeDecision {
        &self.decision
    }

    /// Duration of the (non-hidden part of the) initialization phase.
    pub fn init_duration(&self) -> Time {
        self.init_duration
    }

    /// The timed execution of the task body.
    pub fn result(&self) -> &ExecutionResult {
        &self.result
    }

    /// Reconfiguration penalty of this activation (initialization phase plus
    /// any residual delay inside the body).
    pub fn penalty(&self) -> Time {
        self.result.penalty()
    }

    /// Overhead relative to the ideal makespan of the task.
    pub fn overhead_ratio(&self) -> f64 {
        self.result.overhead_ratio()
    }

    /// Loads actually performed for this activation (initialization + body,
    /// excluding loads hidden in the previous task's window).
    pub fn loads_performed(&self) -> usize {
        self.decision.init_loads.len() + self.decision.body_loads.len()
    }

    /// Idle window the port offers at the end of this task, available for the
    /// initialization phase of the next one.
    pub fn trailing_window(&self) -> InterTaskWindow {
        InterTaskWindow::new(self.result.trailing_port_idle())
    }
}

impl HybridPrefetch {
    /// Runs the design-time phase with the default scheduler (branch & bound
    /// with list-scheduler fallback).
    ///
    /// # Errors
    ///
    /// Returns an error if the model is inconsistent.
    pub fn compute(
        graph: &SubtaskGraph,
        schedule: &InitialSchedule,
        platform: &Platform,
    ) -> Result<Self, PrefetchError> {
        Ok(HybridPrefetch {
            critical: CriticalSetAnalysis::compute(graph, schedule, platform)?,
        })
    }

    /// Runs the design-time phase with an explicit scheduler (ablation hook).
    ///
    /// # Errors
    ///
    /// Returns an error if the model is inconsistent.
    pub fn compute_with(
        graph: &SubtaskGraph,
        schedule: &InitialSchedule,
        platform: &Platform,
        scheduler: &dyn PrefetchScheduler,
    ) -> Result<Self, PrefetchError> {
        Ok(HybridPrefetch {
            critical: CriticalSetAnalysis::compute_with(graph, schedule, platform, scheduler)?,
        })
    }

    /// Like [`compute`](Self::compute), reusing a caller-provided search
    /// cache (see
    /// [`CriticalSetAnalysis::compute_with_cache`]). Sharing the cache with
    /// the design-time search of the same schedule makes the first
    /// critical-set round nearly free; results are bit-identical to
    /// [`compute`](Self::compute).
    ///
    /// # Errors
    ///
    /// Returns an error if the model is inconsistent.
    pub fn compute_assisted(
        graph: &SubtaskGraph,
        schedule: &InitialSchedule,
        platform: &Platform,
        cache: &mut crate::branch_bound::SearchCache,
    ) -> Result<Self, PrefetchError> {
        Ok(HybridPrefetch {
            critical: CriticalSetAnalysis::compute_with_cache(
                graph,
                schedule,
                platform,
                &crate::branch_bound::BranchBoundScheduler::new(),
                cache,
            )?,
        })
    }

    /// Wraps an already-computed (e.g. disk-restored) critical-set analysis.
    pub fn from_critical(critical: CriticalSetAnalysis) -> Self {
        HybridPrefetch { critical }
    }

    /// The critical-subtask analysis stored at design time.
    pub fn critical(&self) -> &CriticalSetAnalysis {
        &self.critical
    }

    /// The cheap run-time phase: given the set of subtasks whose configuration
    /// is resident (reported by the reuse module) and the idle window left by
    /// the previous task, decide which loads to perform.
    ///
    /// This performs no scheduling — only membership tests against the stored
    /// artifact — and is what a real run-time scheduler would execute.
    ///
    /// # Errors
    ///
    /// Returns an error if the model is inconsistent with the stored artifact.
    pub fn runtime_decision(
        &self,
        graph: &SubtaskGraph,
        schedule: &InitialSchedule,
        platform: &Platform,
        resident: &BTreeSet<SubtaskId>,
        window: InterTaskWindow,
    ) -> Result<HybridRuntimeDecision, PrefetchError> {
        let base = PrefetchProblem::with_resident(graph, schedule, platform, resident)?;
        let cs: BTreeSet<SubtaskId> = self.critical.critical_subtasks().iter().copied().collect();
        let assumed_resident: BTreeSet<SubtaskId> = resident.union(&cs).copied().collect();
        let assumed = PrefetchProblem::with_resident(graph, schedule, platform, &assumed_resident)?;

        // Critical subtasks whose residency assumption must be realised by the
        // initialization phase: they need a load now, and pre-loading them
        // actually helps (their slot is untouched before they run).
        let mut init: Vec<SubtaskId> = self
            .critical
            .critical_subtasks()
            .iter()
            .copied()
            .filter(|&id| base.needs_load(id) && !assumed.needs_load(id))
            .collect();
        // Loads already hidden by the previous task's idle window.
        let fit = window
            .whole_loads(platform.reconfig_latency())
            .min(init.len());
        let preloaded: Vec<SubtaskId> = init.drain(..fit).collect();

        // Body loads: the stored order, minus the loads whose configuration is
        // resident (cancelled), plus any critical subtask whose reuse cannot
        // be realised (its slot is overwritten earlier in the task).
        let body_needed: BTreeSet<SubtaskId> = assumed.loads().into_iter().collect();
        let mut body_loads: Vec<SubtaskId> = self
            .critical
            .stored_load_order()
            .iter()
            .copied()
            .filter(|id| body_needed.contains(id))
            .collect();
        for id in &body_needed {
            if !body_loads.contains(id) {
                body_loads.push(*id);
            }
        }
        let cancelled_loads: Vec<SubtaskId> = self
            .critical
            .stored_load_order()
            .iter()
            .copied()
            .filter(|id| !body_needed.contains(id))
            .collect();

        Ok(HybridRuntimeDecision {
            init_loads: init,
            preloaded,
            body_loads,
            cancelled_loads,
        })
    }

    /// Simulates one activation of the task under the hybrid heuristic.
    ///
    /// The initialization phase (the init loads that did not fit in the
    /// inter-task window) runs first and delays the start of the stored
    /// design-time schedule; the body then executes with the surviving loads
    /// in their stored order.
    ///
    /// # Errors
    ///
    /// Returns an error if the model is inconsistent with the stored artifact.
    pub fn evaluate(
        &self,
        graph: &SubtaskGraph,
        schedule: &InitialSchedule,
        platform: &Platform,
        resident: &BTreeSet<SubtaskId>,
        window: InterTaskWindow,
    ) -> Result<HybridOutcome, PrefetchError> {
        let decision = self.runtime_decision(graph, schedule, platform, resident, window)?;
        let latency = platform.reconfig_latency();
        let init_duration = latency * decision.init_loads.len() as u64;

        // During the body, the initialization loads (and the preloaded ones)
        // are resident; the executions may not start before the
        // initialization phase completes.
        let mut body_resident = resident.clone();
        body_resident.extend(decision.init_loads.iter().copied());
        body_resident.extend(decision.preloaded.iter().copied());
        let body_problem =
            PrefetchProblem::with_resident(graph, schedule, platform, &body_resident)?
                .with_earliest_exec_start(init_duration)
                .with_earliest_port_start(init_duration);
        let result = simulate(
            &body_problem,
            LoadStrategy::FixedOrder(&decision.body_loads),
        )?;
        Ok(HybridOutcome {
            decision,
            init_duration,
            result,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BranchBoundScheduler, ListScheduler, PrefetchScheduler};
    use drhw_model::{ConfigId, PeAssignment, Subtask, TileSlot};

    /// The Fig. 3 / Fig. 5 example: CS = {subtask 1}.
    fn fig3() -> (SubtaskGraph, InitialSchedule, Platform) {
        let mut g = SubtaskGraph::new("fig3");
        let s1 = g.add_subtask(Subtask::new("1", Time::from_millis(10), ConfigId::new(1)));
        let s2 = g.add_subtask(Subtask::new("2", Time::from_millis(12), ConfigId::new(2)));
        let s3 = g.add_subtask(Subtask::new("3", Time::from_millis(6), ConfigId::new(3)));
        let s4 = g.add_subtask(Subtask::new("4", Time::from_millis(8), ConfigId::new(4)));
        g.add_dependency(s1, s2).unwrap();
        g.add_dependency(s1, s3).unwrap();
        g.add_dependency(s3, s4).unwrap();
        let schedule = InitialSchedule::from_assignment(
            &g,
            vec![
                PeAssignment::Tile(TileSlot::new(0)),
                PeAssignment::Tile(TileSlot::new(1)),
                PeAssignment::Tile(TileSlot::new(2)),
                PeAssignment::Tile(TileSlot::new(0)),
            ],
        )
        .unwrap();
        let platform = Platform::virtex_like(3).unwrap();
        (g, schedule, platform)
    }

    #[test]
    fn cold_start_pays_exactly_the_initialization_phase() {
        let (g, schedule, platform) = fig3();
        let hybrid = HybridPrefetch::compute(&g, &schedule, &platform).unwrap();
        let outcome = hybrid
            .evaluate(
                &g,
                &schedule,
                &platform,
                &BTreeSet::new(),
                InterTaskWindow::empty(),
            )
            .unwrap();
        // One critical subtask, nothing resident, no window: 4 ms init phase
        // and a zero-penalty body.
        assert_eq!(outcome.init_duration(), Time::from_millis(4));
        assert_eq!(outcome.penalty(), Time::from_millis(4));
        assert_eq!(outcome.decision().init_loads, vec![SubtaskId::new(0)]);
        assert_eq!(outcome.decision().body_loads.len(), 3);
        assert!(outcome.decision().cancelled_loads.is_empty());
        assert_eq!(outcome.loads_performed(), 4);
    }

    #[test]
    fn reused_critical_subtask_removes_the_initialization_phase() {
        let (g, schedule, platform) = fig3();
        let hybrid = HybridPrefetch::compute(&g, &schedule, &platform).unwrap();
        let resident: BTreeSet<SubtaskId> = [SubtaskId::new(0)].into_iter().collect();
        let outcome = hybrid
            .evaluate(
                &g,
                &schedule,
                &platform,
                &resident,
                InterTaskWindow::empty(),
            )
            .unwrap();
        assert_eq!(outcome.init_duration(), Time::ZERO);
        assert_eq!(outcome.penalty(), Time::ZERO);
        assert_eq!(outcome.loads_performed(), 3);
    }

    #[test]
    fn inter_task_window_hides_the_initialization_phase() {
        let (g, schedule, platform) = fig3();
        let hybrid = HybridPrefetch::compute(&g, &schedule, &platform).unwrap();
        let outcome = hybrid
            .evaluate(
                &g,
                &schedule,
                &platform,
                &BTreeSet::new(),
                InterTaskWindow::new(Time::from_millis(4)),
            )
            .unwrap();
        assert_eq!(outcome.init_duration(), Time::ZERO);
        assert_eq!(outcome.penalty(), Time::ZERO);
        assert_eq!(outcome.decision().preloaded, vec![SubtaskId::new(0)]);
        // Loads hidden in the previous window still count as port work done
        // for this task, but not as part of this activation's own loads.
        assert_eq!(outcome.loads_performed(), 3);
        assert_eq!(outcome.decision().load_count(), 4);
    }

    #[test]
    fn cancelled_loads_follow_residency_of_non_critical_subtasks() {
        let (g, schedule, platform) = fig3();
        let hybrid = HybridPrefetch::compute(&g, &schedule, &platform).unwrap();
        // Subtask 3 (non-critical, first on its slot) is resident: its stored
        // load is cancelled without touching the rest of the schedule.
        let resident: BTreeSet<SubtaskId> = [SubtaskId::new(2)].into_iter().collect();
        let decision = hybrid
            .runtime_decision(
                &g,
                &schedule,
                &platform,
                &resident,
                InterTaskWindow::empty(),
            )
            .unwrap();
        assert_eq!(decision.cancelled_loads, vec![SubtaskId::new(2)]);
        assert_eq!(decision.init_loads, vec![SubtaskId::new(0)]);
        assert_eq!(decision.body_loads.len(), 2);
        let outcome = hybrid
            .evaluate(
                &g,
                &schedule,
                &platform,
                &resident,
                InterTaskWindow::empty(),
            )
            .unwrap();
        // The body stays penalty-free; only the init phase is paid.
        assert_eq!(outcome.penalty(), Time::from_millis(4));
    }

    #[test]
    fn everything_resident_cancels_every_avoidable_load() {
        let (g, schedule, platform) = fig3();
        let hybrid = HybridPrefetch::compute(&g, &schedule, &platform).unwrap();
        let resident: BTreeSet<SubtaskId> = g.ids().collect();
        let outcome = hybrid
            .evaluate(
                &g,
                &schedule,
                &platform,
                &resident,
                InterTaskWindow::empty(),
            )
            .unwrap();
        // Subtask 4 shares its slot with subtask 1 under a different
        // configuration, so its load is unavoidable — but it hides behind the
        // executions, leaving zero penalty and no initialization phase.
        assert_eq!(outcome.penalty(), Time::ZERO);
        assert_eq!(outcome.init_duration(), Time::ZERO);
        assert_eq!(outcome.loads_performed(), 1);
        assert_eq!(outcome.decision().cancelled_loads.len(), 2);
    }

    #[test]
    fn hybrid_is_never_better_than_the_pure_run_time_heuristic_on_a_cold_start() {
        // The paper observes the pure run-time approach is slightly better or
        // equal: it can overlap the critical loads with the body instead of
        // serialising them in an initialization phase.
        let (g, schedule, platform) = fig3();
        let hybrid = HybridPrefetch::compute(&g, &schedule, &platform).unwrap();
        let outcome = hybrid
            .evaluate(
                &g,
                &schedule,
                &platform,
                &BTreeSet::new(),
                InterTaskWindow::empty(),
            )
            .unwrap();
        let problem = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        let run_time = ListScheduler::new().schedule(&problem).unwrap();
        assert!(outcome.penalty() >= run_time.penalty());
    }

    #[test]
    fn trailing_window_is_exposed_for_the_next_task() {
        let (g, schedule, platform) = fig3();
        let hybrid = HybridPrefetch::compute(&g, &schedule, &platform).unwrap();
        let outcome = hybrid
            .evaluate(
                &g,
                &schedule,
                &platform,
                &BTreeSet::new(),
                InterTaskWindow::empty(),
            )
            .unwrap();
        assert!(outcome.trailing_window().remaining() > Time::ZERO);
    }

    #[test]
    fn compute_with_list_scheduler_matches_branch_and_bound_here() {
        let (g, schedule, platform) = fig3();
        let a =
            HybridPrefetch::compute_with(&g, &schedule, &platform, &ListScheduler::new()).unwrap();
        let b =
            HybridPrefetch::compute_with(&g, &schedule, &platform, &BranchBoundScheduler::new())
                .unwrap();
        assert_eq!(
            a.critical().critical_subtasks(),
            b.critical().critical_subtasks()
        );
    }

    #[test]
    fn runtime_decision_does_not_reschedule_stored_loads() {
        // The body loads must appear in exactly the stored order (possibly
        // with cancelled entries removed) — the run-time phase never reorders.
        let (g, schedule, platform) = fig3();
        let hybrid = HybridPrefetch::compute(&g, &schedule, &platform).unwrap();
        let stored = hybrid.critical().stored_load_order().to_vec();
        let resident: BTreeSet<SubtaskId> = [SubtaskId::new(2)].into_iter().collect();
        let decision = hybrid
            .runtime_decision(
                &g,
                &schedule,
                &platform,
                &resident,
                InterTaskWindow::empty(),
            )
            .unwrap();
        let positions: Vec<usize> = decision
            .body_loads
            .iter()
            .map(|id| stored.iter().position(|s| s == id).unwrap())
            .collect();
        let mut sorted = positions.clone();
        sorted.sort_unstable();
        assert_eq!(positions, sorted);
    }
}
