//! Exact branch & bound prefetch scheduling.
//!
//! The design-time phase of the hybrid heuristic can afford to search for the
//! *optimal* load order because it runs offline: "we apply a branch&bound
//! algorithm that always finds the optimal solution and for large graphs we
//! keep the heuristic presented in [7] since it generates near optimal
//! schedules in an affordable time" (§5). This module implements exactly that
//! pair: an exhaustive search over load orders with lower-bound pruning, and a
//! transparent fallback to the list scheduler once the number of loads exceeds
//! a configurable threshold.
//!
//! # Assisted search
//!
//! The critical-set loop (Fig. 4) re-runs this search once per round with a
//! monotonically shrinking load set, so consecutive searches share most of
//! their prefix evaluations. [`SearchCache`] captures that structure:
//!
//! * an **evaluation memo** keyed by `(load set, load order)` — a restricted
//!   fixed-order simulation depends on nothing else once the problem's graph,
//!   schedule, platform and timing offsets are fixed, so entries stay valid
//!   across rounds (and across the design-time all-loads search, whose leaves
//!   are the first round's evaluations);
//! * a **dominance table**, valid within one search only: a prefix whose
//!   per-load finish times (compared in ascending subtask id order, so
//!   permutations of the same set line up) are all `>=` those of an
//!   already-explored prefix over the same set cannot lead to a strictly
//!   better completion, and is cut;
//! * a **warm bound**: the previous round's best order, filtered to the
//!   current load set, is evaluated once and its penalty prunes any prefix
//!   that is *strictly* worse.
//!
//! On top of the cache, the assisted search carries a **serialization
//! bound**: the reconfiguration port loads one configuration at a time, so
//! after any prefix the k-th remaining load cannot finish before the
//! prefix's loads plus `k` more latencies — and the loaded subtask still has
//! to run, followed by its longest mandatory chain of executions (graph
//! successors and the next subtask on its PE). Sorting the remaining
//! execution tails descending realizes the assignment that minimizes the
//! maximum finish, so the resulting penalty is a true lower bound on *every*
//! completion of the prefix and can be checked before simulating anything.
//!
//! All of these are pure accelerations: the assisted search visits a subset
//! of the naive search's nodes but provably still reaches the depth-first
//! earliest optimal leaf, so it returns bit-identical results (the
//! `schedule_naive` entry points keep the unassisted algorithm alive as the
//! differential reference).

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use drhw_model::{SubtaskId, Time};

use crate::error::PrefetchError;
use crate::executor::{simulate, simulate_with_needs, LoadStrategy};
use crate::list_scheduler::ListScheduler;
use crate::mask::SlotMask;
use crate::problem::{ExecutionResult, PrefetchProblem};
use crate::scheduler::PrefetchScheduler;

/// Exact prefetch scheduler with a heuristic fallback for large problems.
///
/// The search enumerates load orders depth-first. A partial order is pruned
/// when a relaxation (remaining loads assumed free) already matches or exceeds
/// the best complete schedule found so far, so the incumbent produced by the
/// list scheduler makes the search terminate quickly on the graph sizes of the
/// paper's benchmarks. See the [module docs](self) for the memoization,
/// dominance and warm-start accelerations layered on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchBoundScheduler {
    exhaustive_limit: usize,
    node_limit: u64,
}

impl BranchBoundScheduler {
    /// Default maximum number of loads for which the exact search is run;
    /// larger problems fall back to the list scheduler, mirroring the paper.
    pub const DEFAULT_EXHAUSTIVE_LIMIT: usize = 12;

    /// Default cap on explored search nodes (a safety valve, far above what
    /// the benchmark graphs need).
    pub const DEFAULT_NODE_LIMIT: u64 = 2_000_000;

    /// Creates a scheduler with the default limits.
    pub fn new() -> Self {
        BranchBoundScheduler {
            exhaustive_limit: Self::DEFAULT_EXHAUSTIVE_LIMIT,
            node_limit: Self::DEFAULT_NODE_LIMIT,
        }
    }

    /// Returns a copy with a different exhaustive-search threshold.
    #[must_use]
    pub fn with_exhaustive_limit(mut self, loads: usize) -> Self {
        self.exhaustive_limit = loads;
        self
    }

    /// Returns a copy with a different search-node cap.
    #[must_use]
    pub fn with_node_limit(mut self, nodes: u64) -> Self {
        self.node_limit = nodes;
        self
    }

    /// The exhaustive-search threshold currently configured.
    pub fn exhaustive_limit(&self) -> usize {
        self.exhaustive_limit
    }

    /// Runs the assisted search and reports its statistics.
    ///
    /// `cache` may be shared across searches over the **same** graph,
    /// schedule, platform and timing offsets (the critical-set rounds); call
    /// [`SearchCache::clear`] before reusing it with a different problem.
    /// `warm_order` is a complete load order from a related search; its
    /// penalty, when it evaluates cleanly against this problem, prunes every
    /// prefix that is strictly worse. Invalid or infeasible warm orders are
    /// silently ignored.
    ///
    /// # Errors
    ///
    /// Returns an error if the problem's model is inconsistent.
    pub fn schedule_with_stats(
        &self,
        problem: &PrefetchProblem<'_>,
        cache: &mut SearchCache,
        warm_order: Option<&[SubtaskId]>,
    ) -> Result<(ExecutionResult, SearchStats), PrefetchError> {
        cache.begin_search(problem);
        let loads = problem.loads_by_weight_desc();
        let incumbent = ListScheduler::new().schedule(problem)?;
        if loads.len() > self.exhaustive_limit || incumbent.penalty().is_zero() {
            return Ok((incumbent, SearchStats::default()));
        }

        // Memoization and dominance key on a (SlotMask, packed order) pair, so
        // they require every subtask id to fit the mask and the order to fit
        // the packing. Oversized problems still get the full assisted control
        // flow, just with the caches disabled.
        let cacheable =
            SlotMask::fits(problem.graph().len()) && loads.len() <= PACKED_ORDER_CAPACITY;
        let full_set = if cacheable {
            loads.iter().map(|id| id.index()).collect()
        } else {
            SlotMask::EMPTY
        };
        let mut search = AssistedSearch {
            problem,
            cache,
            best: incumbent,
            stats: SearchStats::default(),
            node_limit: self.node_limit,
            cacheable,
            full_set,
            warm_bound: None,
            needs: vec![false; problem.graph().len()],
            state: Vec::with_capacity(loads.len()),
            exec_tail: exec_tails(problem)?,
            latency: problem.platform().reconfig_latency(),
            ideal: problem.ideal_makespan(),
            port_start: problem.earliest_port_start(),
            tail_scratch: Vec::with_capacity(loads.len()),
        };
        // The warm order is already a complete feasible order of the same
        // loads (when valid), so its penalty is an upper bound on the optimum.
        // It is only used as a *strictly greater* prune: prefixes whose lower
        // bound equals it survive, so the search still reaches the
        // depth-first-earliest optimal leaf and stays bit-identical.
        search.warm_bound = warm_order.and_then(|order| search.warm_penalty(order, &loads));
        let mut prefix = Vec::with_capacity(loads.len());
        search.explore(&mut prefix, SlotMask::EMPTY, &loads)?;
        let AssistedSearch { best, stats, .. } = search;
        Ok((best, stats))
    }

    /// The original, unassisted branch & bound — no memoization, dominance or
    /// warm pruning, and a fresh problem clone per interior node. Kept as the
    /// differential reference for the scheduler-equivalence tests and the
    /// pruning benchmarks; [`schedule`](PrefetchScheduler::schedule) must
    /// return bit-identical results.
    ///
    /// # Errors
    ///
    /// Returns an error if the problem's model is inconsistent.
    pub fn schedule_naive(
        &self,
        problem: &PrefetchProblem<'_>,
    ) -> Result<ExecutionResult, PrefetchError> {
        self.schedule_naive_with_stats(problem).map(|(r, _)| r)
    }

    /// [`schedule_naive`](Self::schedule_naive) plus node statistics.
    ///
    /// # Errors
    ///
    /// Returns an error if the problem's model is inconsistent.
    pub fn schedule_naive_with_stats(
        &self,
        problem: &PrefetchProblem<'_>,
    ) -> Result<(ExecutionResult, SearchStats), PrefetchError> {
        let loads = problem.loads_by_weight_desc();
        let incumbent = ListScheduler::new().schedule(problem)?;
        if loads.len() > self.exhaustive_limit || incumbent.penalty().is_zero() {
            return Ok((incumbent, SearchStats::default()));
        }

        let mut search = NaiveSearch {
            problem,
            best: incumbent,
            nodes: 0,
            node_limit: self.node_limit,
        };
        let mut prefix = Vec::with_capacity(loads.len());
        search.explore(&mut prefix, &loads)?;
        let stats = SearchStats {
            nodes: search.nodes,
            ..SearchStats::default()
        };
        Ok((search.best, stats))
    }
}

impl Default for BranchBoundScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl PrefetchScheduler for BranchBoundScheduler {
    fn name(&self) -> &str {
        "branch-and-bound"
    }

    fn schedule(&self, problem: &PrefetchProblem<'_>) -> Result<ExecutionResult, PrefetchError> {
        let mut cache = SearchCache::new();
        self.schedule_with_stats(problem, &mut cache, None)
            .map(|(result, _)| result)
    }

    fn schedule_assisted(
        &self,
        problem: &PrefetchProblem<'_>,
        cache: &mut SearchCache,
        warm_order: Option<&[SubtaskId]>,
    ) -> Result<ExecutionResult, PrefetchError> {
        self.schedule_with_stats(problem, cache, warm_order)
            .map(|(result, _)| result)
    }
}

/// Counters describing one branch & bound search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Search-tree nodes visited (prefixes, including complete orders).
    pub nodes: u64,
    /// Prefix evaluations answered from the cross-round memo table instead of
    /// running the timing simulation.
    pub memo_hits: u64,
    /// Subtrees cut because an already-explored prefix over the same load set
    /// had every load in place at least as early.
    pub dominance_prunes: u64,
    /// Subtrees cut by the warm-start bound carried in from a previous
    /// related search.
    pub warm_prunes: u64,
    /// Subtrees cut by the serialization bound *before* simulating the
    /// prefix: the remaining loads serialize on the reconfiguration port and
    /// drag their mandatory execution chains behind them, which already
    /// matches or exceeds the incumbent.
    pub tail_prunes: u64,
}

/// Maximum order length the `(set, order)` memo key can represent: orders are
/// packed 7 bits per subtask id into a `u128` (ids are `< 64` whenever the
/// set mask fits, so 7 bits are plenty and 18 ids fill 126 bits).
const PACKED_ORDER_CAPACITY: usize = 18;

/// Slots of the evaluation memo (a power of two — the fingerprint is masked
/// down to an index). One critical-set loop touches a few thousand distinct
/// prefixes on the benchmark graphs; 32768 slots keep conflict evictions rare
/// (so entries survive from one round to the next) while a lookup stays one
/// probe.
const EVAL_SLOTS: usize = 32768;

/// Cap on stored dominance states per load set. Beyond it new states are
/// dropped, which only weakens pruning, never correctness.
const DOMINANCE_CAP: usize = 64;

/// SplitMix64 finalizer — mixes every key bit into the slot index (the same
/// fingerprint construction as the run-time kernel memos in `drhw-sim`).
fn mix(z: u64) -> u64 {
    let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Memo key: which loads cost anything (the restricted set) and the exact
/// order the prefix loads them in.
#[derive(Clone, Copy, PartialEq, Eq)]
struct EvalKey {
    set: SlotMask,
    order: u128,
}

impl EvalKey {
    fn fingerprint(self) -> u64 {
        mix(self
            .set
            .bits()
            .wrapping_add(mix(self.order as u64))
            .wrapping_add(mix((self.order >> 64) as u64).rotate_left(1)))
    }
}

fn pack_order(order: &[SubtaskId]) -> u128 {
    let mut packed = 0u128;
    for &id in order {
        packed = (packed << 7) | (id.index() as u128 + 1);
    }
    packed
}

/// Outcome of one restricted fixed-order evaluation. `None` means the order
/// deadlocks (and always will — feasibility of a prefix does not depend on
/// which other loads are free). A feasible outcome carries the penalty and the
/// per-load finish times in order position, from which dominance states are
/// derived on hits without re-simulating.
type EvalValue = Option<(Time, Box<[Time]>)>;

/// Reusable acceleration state of the assisted branch & bound search.
///
/// One cache may serve many searches over the *same* prefetch problem modulo
/// its resident set — exactly the shape of the critical-set loop, where every
/// round re-searches the same graph/schedule/platform with a shrinking load
/// set. The evaluation memo survives across those rounds; the dominance table
/// is valid within a single search only and is reset automatically. Reusing a
/// cache with a *different* graph, schedule, platform or timing offsets is a
/// logic error (debug builds assert against it) — call
/// [`clear`](SearchCache::clear) in between.
pub struct SearchCache {
    evals: Box<[Option<(EvalKey, EvalValue)>]>,
    dominance: HashMap<u64, Vec<Box<[Time]>>>,
    #[cfg(debug_assertions)]
    bound_to: Option<(usize, usize, usize, Time, Time)>,
}

impl SearchCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        SearchCache {
            evals: vec![None; EVAL_SLOTS].into_boxed_slice(),
            dominance: HashMap::new(),
            #[cfg(debug_assertions)]
            bound_to: None,
        }
    }

    /// Drops every memoized entry, making the cache safe to reuse with a
    /// different problem.
    pub fn clear(&mut self) {
        self.evals.fill(None);
        self.dominance.clear();
        #[cfg(debug_assertions)]
        {
            self.bound_to = None;
        }
    }

    #[cfg_attr(not(debug_assertions), allow(unused_variables))]
    fn begin_search(&mut self, problem: &PrefetchProblem<'_>) {
        // Dominance is only meaningful within one search: a stored state
        // proves "some explored prefix reaches every completion at least as
        // early", and the completions range over the *remaining* loads, which
        // differ once the round's load set changes. The evaluation memo keys
        // on the restricted set explicitly and survives.
        self.dominance.clear();
        #[cfg(debug_assertions)]
        {
            let identity = (
                problem.graph() as *const _ as usize,
                problem.schedule() as *const _ as usize,
                problem.platform() as *const _ as usize,
                problem.earliest_exec_start(),
                problem.earliest_port_start(),
            );
            if let Some(bound) = self.bound_to {
                debug_assert!(
                    bound == identity,
                    "SearchCache reused across different problems; call clear() in between"
                );
            }
            self.bound_to = Some(identity);
        }
    }

    fn eval_get(&self, key: EvalKey) -> Option<EvalValue> {
        match &self.evals[key.fingerprint() as usize & (EVAL_SLOTS - 1)] {
            Some((stored, value)) if *stored == key => Some(value.clone()),
            _ => None,
        }
    }

    fn eval_put(&mut self, key: EvalKey, value: EvalValue) {
        self.evals[key.fingerprint() as usize & (EVAL_SLOTS - 1)] = Some((key, value));
    }

    /// Records `state` (ascending-id per-load finish times of a prefix over
    /// `set`) and reports whether an already-recorded state dominates it
    /// componentwise. Dominated states are not recorded — the dominating one
    /// already covers everything they would.
    fn dominance_probe(&mut self, set: SlotMask, state: &[Time]) -> bool {
        let states = self.dominance.entry(set.bits()).or_default();
        if states
            .iter()
            .any(|s| s.iter().zip(state).all(|(a, b)| a <= b))
        {
            return true;
        }
        if states.len() < DOMINANCE_CAP {
            states.push(state.into());
        }
        false
    }
}

impl Default for SearchCache {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for SearchCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SearchCache")
            .field("evals", &self.evals.iter().filter(|e| e.is_some()).count())
            .field("dominance_sets", &self.dominance.len())
            .finish()
    }
}

struct AssistedSearch<'c, 'p, 'a> {
    problem: &'p PrefetchProblem<'a>,
    cache: &'c mut SearchCache,
    best: ExecutionResult,
    stats: SearchStats,
    node_limit: u64,
    cacheable: bool,
    full_set: SlotMask,
    warm_bound: Option<Time>,
    /// Scratch needs-load flags for restricted evaluations (all `false`
    /// between uses).
    needs: Vec<bool>,
    /// Scratch buffer for canonicalized dominance states.
    state: Vec<Time>,
    /// Per-subtask execution tails for the serialization bound (see
    /// [`exec_tails`]).
    exec_tail: Vec<Time>,
    /// One reconfiguration latency (every load occupies the port this long).
    latency: Time,
    /// The zero-latency makespan penalties are measured against.
    ideal: Time,
    /// Earliest instant the reconfiguration port may start a load.
    port_start: Time,
    /// Scratch for the descending sort of remaining execution tails.
    tail_scratch: Vec<Time>,
}

/// Per-subtask "execution tail": the subtask's own execution time plus the
/// longest chain of execution times that must follow it, over the combined
/// precedence relation (graph dependencies and the next subtask on the same
/// PE), with every load assumed free. A subtask whose load finishes at `t`
/// cannot see the last execution finish before `t + tail`, whatever the
/// remaining load order does — the chain is mandatory and load-independent.
fn exec_tails(problem: &PrefetchProblem<'_>) -> Result<Vec<Time>, PrefetchError> {
    let graph = problem.graph();
    let schedule = problem.schedule();
    let order = schedule.combined_topological_order(graph)?;
    let mut tail = vec![Time::ZERO; graph.len()];
    for &id in order.iter().rev() {
        let mut after = Time::ZERO;
        for &succ in graph.successors(id) {
            after = after.max(tail[succ.index()]);
        }
        if let Some(succ) = schedule.successor_on_pe(id) {
            after = after.max(tail[succ.index()]);
        }
        tail[id.index()] = graph.subtask(id).exec_time() + after;
    }
    Ok(tail)
}

impl AssistedSearch<'_, '_, '_> {
    fn explore(
        &mut self,
        prefix: &mut Vec<SubtaskId>,
        set: SlotMask,
        remaining: &[SubtaskId],
    ) -> Result<(), PrefetchError> {
        if self.best.penalty().is_zero() || self.stats.nodes >= self.node_limit {
            return Ok(());
        }
        self.stats.nodes += 1;

        if remaining.is_empty() {
            // The memo answers "is this complete order an improvement?"; only
            // improvements (rare) re-simulate to materialize the full result.
            match self.eval(self.full_set, prefix, true) {
                Ok(Some((penalty, _))) if penalty < self.best.penalty() => {
                    if let Ok(result) = simulate(self.problem, LoadStrategy::FixedOrder(prefix)) {
                        self.best = result;
                    }
                }
                _ => {}
            }
            return Ok(());
        }

        // Serialization bound, before any simulation: even if every prefix
        // load finishes as early as the port allows, the remaining loads
        // still queue on the single reconfiguration port with their
        // mandatory execution chains behind them.
        let port_lb = self.port_start + self.latency * prefix.len() as u64;
        let tail_lb = self.tail_lower_bound(port_lb, remaining);
        if tail_lb >= self.best.penalty() {
            self.stats.tail_prunes += 1;
            return Ok(());
        }
        if self.warm_bound.is_some_and(|warm| tail_lb > warm) {
            self.stats.warm_prunes += 1;
            return Ok(());
        }

        // Lower bound: only the prefix loads cost anything; the rest are free.
        if !prefix.is_empty() {
            match self.eval(set, prefix, false)? {
                // A deadlocking prefix can never become a feasible order.
                None => return Ok(()),
                Some((penalty, times)) => {
                    // The restricted simulation yields the prefix's true
                    // port-free instant, which sharpens the serialization
                    // bound beyond the pre-simulation estimate.
                    let port_free = times.iter().copied().max().unwrap_or(self.port_start);
                    let bound = penalty.max(self.tail_lower_bound(port_free, remaining));
                    let bound_pruned = bound >= self.best.penalty();
                    let warm_pruned = self.warm_bound.is_some_and(|warm| bound > warm);
                    // The dominance state is recorded even when this prefix is
                    // pruned: its completions cannot beat the incumbent (or
                    // the warm bound) either, so later prefixes it dominates
                    // are just as safe to cut.
                    let dominated = self.probe_dominance(set, prefix, &times);
                    if bound_pruned {
                        return Ok(());
                    }
                    if warm_pruned {
                        self.stats.warm_prunes += 1;
                        return Ok(());
                    }
                    if dominated {
                        self.stats.dominance_prunes += 1;
                        return Ok(());
                    }
                }
            }
        }

        for (index, &next) in remaining.iter().enumerate() {
            prefix.push(next);
            let child_set = if self.cacheable {
                let mut child = set;
                child.insert(next.index());
                child
            } else {
                SlotMask::EMPTY
            };
            let mut rest = remaining.to_vec();
            rest.remove(index);
            self.explore(prefix, child_set, &rest)?;
            prefix.pop();
        }
        Ok(())
    }

    /// Admissible lower bound on the penalty of every completion of a prefix
    /// whose loads are all done by `port_free`: the k-th remaining load
    /// cannot finish before `port_free + k` latencies (the port is serial
    /// and the fixed order puts every remaining load after the prefix), and
    /// its subtask's execution tail follows. Pairing the largest tails with
    /// the earliest port slots minimizes the maximum over all assignments,
    /// so no completion — whatever order it picks — can land below the
    /// returned penalty.
    fn tail_lower_bound(&mut self, port_free: Time, remaining: &[SubtaskId]) -> Time {
        let latency = self.latency;
        let Self {
            tail_scratch,
            exec_tail,
            ..
        } = self;
        tail_scratch.clear();
        tail_scratch.extend(remaining.iter().map(|&id| exec_tail[id.index()]));
        tail_scratch.sort_unstable_by(|a, b| b.cmp(a));
        let mut makespan = Time::ZERO;
        for (position, &tail) in tail_scratch.iter().enumerate() {
            makespan = makespan.max(port_free + latency * (position as u64 + 1) + tail);
        }
        makespan.saturating_sub(self.ideal)
    }

    /// Evaluates `order` with exactly the loads in `set` costing anything
    /// (`full` marks the unrestricted problem), through the memo when the
    /// problem is cacheable. `Ok(None)` means the order deadlocks; errors
    /// other than a deadlock are surfaced and never memoized.
    fn eval(
        &mut self,
        set: SlotMask,
        order: &[SubtaskId],
        full: bool,
    ) -> Result<EvalValue, PrefetchError> {
        let key = self.cacheable.then(|| EvalKey {
            set,
            order: pack_order(order),
        });
        if let Some(key) = key {
            if let Some(value) = self.cache.eval_get(key) {
                self.stats.memo_hits += 1;
                return Ok(value);
            }
        }
        let outcome = if full {
            simulate(self.problem, LoadStrategy::FixedOrder(order))
        } else {
            for &id in order {
                self.needs[id.index()] = true;
            }
            let outcome =
                simulate_with_needs(self.problem, LoadStrategy::FixedOrder(order), &self.needs);
            for &id in order {
                self.needs[id.index()] = false;
            }
            outcome
        };
        let value = match outcome {
            Ok(result) => {
                let times: Box<[Time]> = order
                    .iter()
                    .map(|&id| {
                        result
                            .timed()
                            .load(id)
                            .expect("every restricted load is performed")
                            .finish
                    })
                    .collect();
                Some((result.penalty(), times))
            }
            Err(PrefetchError::DeadlockedOrder) => None,
            Err(other) => return Err(other),
        };
        if let Some(key) = key {
            self.cache.eval_put(key, value.clone());
        }
        Ok(value)
    }

    /// Canonicalizes the prefix's per-load finish times to ascending subtask
    /// id order (so different permutations of the same set are comparable) and
    /// probes the dominance table.
    fn probe_dominance(&mut self, set: SlotMask, order: &[SubtaskId], times: &[Time]) -> bool {
        if !self.cacheable {
            return false;
        }
        self.state.clear();
        for index in set.iter() {
            let position = order
                .iter()
                .position(|id| id.index() == index)
                .expect("the prefix is a permutation of its set");
            self.state.push(times[position]);
        }
        self.cache.dominance_probe(set, &self.state)
    }

    /// The warm bound: the previous search's best order filtered to this
    /// problem's loads, evaluated once (through the memo). Orders that are not
    /// a permutation of the current load set, or fail to simulate, yield no
    /// bound.
    fn warm_penalty(&mut self, order: &[SubtaskId], loads: &[SubtaskId]) -> Option<Time> {
        if order.len() != loads.len() {
            return None;
        }
        if self.cacheable {
            let set: SlotMask = order.iter().map(|id| id.index()).collect();
            if set != self.full_set {
                return None;
            }
        }
        match self.eval(self.full_set, order, true) {
            Ok(Some((penalty, _))) => Some(penalty),
            _ => None,
        }
    }
}

struct NaiveSearch<'p, 'a> {
    problem: &'p PrefetchProblem<'a>,
    best: ExecutionResult,
    nodes: u64,
    node_limit: u64,
}

impl NaiveSearch<'_, '_> {
    fn explore(
        &mut self,
        prefix: &mut Vec<SubtaskId>,
        remaining: &[SubtaskId],
    ) -> Result<(), PrefetchError> {
        if self.best.penalty().is_zero() || self.nodes >= self.node_limit {
            return Ok(());
        }
        self.nodes += 1;

        if remaining.is_empty() {
            if let Ok(result) = simulate(self.problem, LoadStrategy::FixedOrder(prefix)) {
                if result.penalty() < self.best.penalty() {
                    self.best = result;
                }
            }
            return Ok(());
        }

        // Lower bound: only the prefix loads cost anything; the rest are free.
        if !prefix.is_empty() {
            let subset: BTreeSet<SubtaskId> = prefix.iter().copied().collect();
            let relaxed = self.problem.restricted_to_loads(&subset);
            match simulate(&relaxed, LoadStrategy::FixedOrder(prefix)) {
                Ok(result) if result.penalty() >= self.best.penalty() => return Ok(()),
                Ok(_) => {}
                // A deadlocking prefix can never become a feasible order.
                Err(PrefetchError::DeadlockedOrder) => return Ok(()),
                Err(other) => return Err(other),
            }
        }

        for (index, &next) in remaining.iter().enumerate() {
            prefix.push(next);
            let mut rest = remaining.to_vec();
            rest.remove(index);
            self.explore(prefix, &rest)?;
            prefix.pop();
        }
        Ok(())
    }
}

/// Convenience function: the optimal penalty of a problem (branch & bound with
/// default limits), returned as a duration.
///
/// # Errors
///
/// Propagates scheduling errors from the underlying search.
pub fn optimal_penalty(problem: &PrefetchProblem<'_>) -> Result<Time, PrefetchError> {
    BranchBoundScheduler::new()
        .schedule(problem)
        .map(|r| r.penalty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OnDemandScheduler;
    use drhw_model::{
        ConfigId, InitialSchedule, PeAssignment, Platform, Subtask, SubtaskGraph, TileSlot,
    };

    /// A two-tile problem where greedy weight order is sub-optimal:
    /// the highest-weight load is not the one that must go first to keep the
    /// second tile busy.
    fn tricky() -> (SubtaskGraph, InitialSchedule, Platform) {
        let mut g = SubtaskGraph::new("tricky");
        // slot0: a(6ms) then c(20ms); slot1: b(5ms) then d(5ms).
        let a = g.add_subtask(Subtask::new("a", Time::from_millis(6), ConfigId::new(0)));
        let b = g.add_subtask(Subtask::new("b", Time::from_millis(5), ConfigId::new(1)));
        let c = g.add_subtask(Subtask::new("c", Time::from_millis(20), ConfigId::new(2)));
        let d = g.add_subtask(Subtask::new("d", Time::from_millis(5), ConfigId::new(3)));
        g.add_dependency(a, c).unwrap();
        g.add_dependency(b, d).unwrap();
        let schedule = InitialSchedule::from_assignment(
            &g,
            vec![
                PeAssignment::Tile(TileSlot::new(0)),
                PeAssignment::Tile(TileSlot::new(1)),
                PeAssignment::Tile(TileSlot::new(0)),
                PeAssignment::Tile(TileSlot::new(1)),
            ],
        )
        .unwrap();
        let platform = Platform::virtex_like(2).unwrap();
        (g, schedule, platform)
    }

    #[test]
    fn never_worse_than_the_list_scheduler() {
        let (g, schedule, platform) = tricky();
        let problem = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        let list = ListScheduler::new().schedule(&problem).unwrap();
        let exact = BranchBoundScheduler::new().schedule(&problem).unwrap();
        assert!(exact.penalty() <= list.penalty());
        let on_demand = OnDemandScheduler::new().schedule(&problem).unwrap();
        assert!(exact.penalty() <= on_demand.penalty());
    }

    #[test]
    fn matches_exhaustive_enumeration_on_a_small_problem() {
        let (g, schedule, platform) = tricky();
        let problem = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        let loads = problem.loads();
        // Enumerate every permutation by brute force and keep the best.
        let mut best = Time::MAX;
        let mut order = loads.clone();
        permute(&mut order, 0, &mut |candidate| {
            if let Ok(result) = simulate(&problem, LoadStrategy::FixedOrder(candidate)) {
                best = best.min(result.penalty());
            }
        });
        let exact = BranchBoundScheduler::new().schedule(&problem).unwrap();
        assert_eq!(exact.penalty(), best);
    }

    fn permute(items: &mut Vec<SubtaskId>, k: usize, visit: &mut impl FnMut(&[SubtaskId])) {
        if k == items.len() {
            visit(items);
            return;
        }
        for i in k..items.len() {
            items.swap(k, i);
            permute(items, k + 1, visit);
            items.swap(k, i);
        }
    }

    #[test]
    fn falls_back_to_the_heuristic_beyond_the_limit() {
        let (g, schedule, platform) = tricky();
        let problem = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        let limited = BranchBoundScheduler::new().with_exhaustive_limit(1);
        let list = ListScheduler::new().schedule(&problem).unwrap();
        let fallback = limited.schedule(&problem).unwrap();
        assert_eq!(fallback.penalty(), list.penalty());
        assert_eq!(limited.exhaustive_limit(), 1);
    }

    #[test]
    fn empty_load_set_is_trivially_optimal() {
        // Two independent subtasks, one per slot, both resident: no loads.
        let mut g = SubtaskGraph::new("resident");
        let a = g.add_subtask(Subtask::new("a", Time::from_millis(6), ConfigId::new(0)));
        let b = g.add_subtask(Subtask::new("b", Time::from_millis(9), ConfigId::new(1)));
        let schedule = InitialSchedule::from_assignment(
            &g,
            vec![
                PeAssignment::Tile(TileSlot::new(0)),
                PeAssignment::Tile(TileSlot::new(1)),
            ],
        )
        .unwrap();
        let platform = Platform::virtex_like(2).unwrap();
        let resident: BTreeSet<SubtaskId> = [a, b].into_iter().collect();
        let problem = PrefetchProblem::with_resident(&g, &schedule, &platform, &resident).unwrap();
        assert_eq!(problem.load_count(), 0);
        let exact = BranchBoundScheduler::new().schedule(&problem).unwrap();
        assert_eq!(exact.penalty(), Time::ZERO);
        assert_eq!(optimal_penalty(&problem).unwrap(), Time::ZERO);
    }

    #[test]
    fn residency_cannot_remove_a_second_configuration_on_the_same_slot() {
        // Marking every subtask resident is physically impossible when a slot
        // hosts two different configurations: the second one must be loaded.
        let (g, schedule, platform) = tricky();
        let resident: BTreeSet<SubtaskId> = g.ids().collect();
        let problem = PrefetchProblem::with_resident(&g, &schedule, &platform, &resident).unwrap();
        assert_eq!(problem.load_count(), 2);
        let exact = BranchBoundScheduler::new().schedule(&problem).unwrap();
        // The loads of c and d hide only partially behind a and b.
        assert_eq!(exact.penalty(), Time::from_millis(4));
    }

    #[test]
    fn assisted_search_matches_the_naive_search_bit_for_bit() {
        let (g, schedule, platform) = tricky();
        let problem = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        let scheduler = BranchBoundScheduler::new();
        let naive = scheduler.schedule_naive(&problem).unwrap();
        let mut cache = SearchCache::new();
        let (assisted, stats) = scheduler
            .schedule_with_stats(&problem, &mut cache, None)
            .unwrap();
        assert_eq!(assisted, naive);
        assert!(stats.nodes > 0);
        // A second search over the same problem replays from the memo.
        let (again, stats) = scheduler
            .schedule_with_stats(&problem, &mut cache, None)
            .unwrap();
        assert_eq!(again, naive);
        assert!(stats.memo_hits > 0, "second search should hit the memo");
    }

    #[test]
    fn warm_order_never_changes_the_result() {
        let (g, schedule, platform) = tricky();
        let problem = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        let scheduler = BranchBoundScheduler::new();
        let naive = scheduler.schedule_naive(&problem).unwrap();
        // Warm with the optimal order itself, a wrong-length order and a
        // reversed (possibly infeasible) order: all must give the same result.
        let optimal = naive.load_order().to_vec();
        let mut reversed = optimal.clone();
        reversed.reverse();
        let short = &optimal[..1];
        for warm in [
            Some(optimal.as_slice()),
            Some(reversed.as_slice()),
            Some(short),
            None,
        ] {
            let mut cache = SearchCache::new();
            let (result, _) = scheduler
                .schedule_with_stats(&problem, &mut cache, warm)
                .unwrap();
            assert_eq!(result, naive);
        }
    }

    #[test]
    fn assisted_search_explores_no_more_nodes_than_the_naive_search() {
        let (g, schedule, platform) = tricky();
        let problem = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        let scheduler = BranchBoundScheduler::new();
        let (_, naive) = scheduler.schedule_naive_with_stats(&problem).unwrap();
        let mut cache = SearchCache::new();
        let (_, assisted) = scheduler
            .schedule_with_stats(&problem, &mut cache, None)
            .unwrap();
        assert!(assisted.nodes <= naive.nodes);
    }

    #[test]
    fn search_cache_debug_is_compact() {
        let cache = SearchCache::new();
        let text = format!("{cache:?}");
        assert!(text.contains("SearchCache"));
        assert!(text.len() < 200);
    }
}
