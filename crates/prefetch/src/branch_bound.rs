//! Exact branch & bound prefetch scheduling.
//!
//! The design-time phase of the hybrid heuristic can afford to search for the
//! *optimal* load order because it runs offline: "we apply a branch&bound
//! algorithm that always finds the optimal solution and for large graphs we
//! keep the heuristic presented in [7] since it generates near optimal
//! schedules in an affordable time" (§5). This module implements exactly that
//! pair: an exhaustive search over load orders with lower-bound pruning, and a
//! transparent fallback to the list scheduler once the number of loads exceeds
//! a configurable threshold.

use std::collections::BTreeSet;

use drhw_model::{SubtaskId, Time};

use crate::error::PrefetchError;
use crate::executor::{simulate, LoadStrategy};
use crate::list_scheduler::ListScheduler;
use crate::problem::{ExecutionResult, PrefetchProblem};
use crate::scheduler::PrefetchScheduler;

/// Exact prefetch scheduler with a heuristic fallback for large problems.
///
/// The search enumerates load orders depth-first. A partial order is pruned
/// when a relaxation (remaining loads assumed free) already matches or exceeds
/// the best complete schedule found so far, so the incumbent produced by the
/// list scheduler makes the search terminate quickly on the graph sizes of the
/// paper's benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchBoundScheduler {
    exhaustive_limit: usize,
    node_limit: u64,
}

impl BranchBoundScheduler {
    /// Default maximum number of loads for which the exact search is run;
    /// larger problems fall back to the list scheduler, mirroring the paper.
    pub const DEFAULT_EXHAUSTIVE_LIMIT: usize = 12;

    /// Default cap on explored search nodes (a safety valve, far above what
    /// the benchmark graphs need).
    pub const DEFAULT_NODE_LIMIT: u64 = 2_000_000;

    /// Creates a scheduler with the default limits.
    pub fn new() -> Self {
        BranchBoundScheduler {
            exhaustive_limit: Self::DEFAULT_EXHAUSTIVE_LIMIT,
            node_limit: Self::DEFAULT_NODE_LIMIT,
        }
    }

    /// Returns a copy with a different exhaustive-search threshold.
    #[must_use]
    pub fn with_exhaustive_limit(mut self, loads: usize) -> Self {
        self.exhaustive_limit = loads;
        self
    }

    /// Returns a copy with a different search-node cap.
    #[must_use]
    pub fn with_node_limit(mut self, nodes: u64) -> Self {
        self.node_limit = nodes;
        self
    }

    /// The exhaustive-search threshold currently configured.
    pub fn exhaustive_limit(&self) -> usize {
        self.exhaustive_limit
    }
}

impl Default for BranchBoundScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl PrefetchScheduler for BranchBoundScheduler {
    fn name(&self) -> &str {
        "branch-and-bound"
    }

    fn schedule(&self, problem: &PrefetchProblem<'_>) -> Result<ExecutionResult, PrefetchError> {
        let loads = problem.loads_by_weight_desc();
        let incumbent = ListScheduler::new().schedule(problem)?;
        if loads.len() > self.exhaustive_limit || incumbent.penalty().is_zero() {
            return Ok(incumbent);
        }

        let mut search = Search {
            problem,
            best: incumbent,
            nodes: 0,
            node_limit: self.node_limit,
        };
        let mut prefix = Vec::with_capacity(loads.len());
        search.explore(&mut prefix, &loads)?;
        Ok(search.best)
    }
}

struct Search<'p, 'a> {
    problem: &'p PrefetchProblem<'a>,
    best: ExecutionResult,
    nodes: u64,
    node_limit: u64,
}

impl Search<'_, '_> {
    fn explore(
        &mut self,
        prefix: &mut Vec<SubtaskId>,
        remaining: &[SubtaskId],
    ) -> Result<(), PrefetchError> {
        if self.best.penalty().is_zero() || self.nodes >= self.node_limit {
            return Ok(());
        }
        self.nodes += 1;

        if remaining.is_empty() {
            if let Ok(result) = simulate(self.problem, LoadStrategy::FixedOrder(prefix)) {
                if result.penalty() < self.best.penalty() {
                    self.best = result;
                }
            }
            return Ok(());
        }

        // Lower bound: only the prefix loads cost anything; the rest are free.
        if !prefix.is_empty() {
            let subset: BTreeSet<SubtaskId> = prefix.iter().copied().collect();
            let relaxed = self.problem.restricted_to_loads(&subset);
            match simulate(&relaxed, LoadStrategy::FixedOrder(prefix)) {
                Ok(result) if result.penalty() >= self.best.penalty() => return Ok(()),
                Ok(_) => {}
                // A deadlocking prefix can never become a feasible order.
                Err(PrefetchError::DeadlockedOrder) => return Ok(()),
                Err(other) => return Err(other),
            }
        }

        for (index, &next) in remaining.iter().enumerate() {
            prefix.push(next);
            let mut rest = remaining.to_vec();
            rest.remove(index);
            self.explore(prefix, &rest)?;
            prefix.pop();
        }
        Ok(())
    }
}

/// Convenience function: the optimal penalty of a problem (branch & bound with
/// default limits), returned as a duration.
///
/// # Errors
///
/// Propagates scheduling errors from the underlying search.
pub fn optimal_penalty(problem: &PrefetchProblem<'_>) -> Result<Time, PrefetchError> {
    BranchBoundScheduler::new()
        .schedule(problem)
        .map(|r| r.penalty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OnDemandScheduler;
    use drhw_model::{
        ConfigId, InitialSchedule, PeAssignment, Platform, Subtask, SubtaskGraph, TileSlot,
    };

    /// A two-tile problem where greedy weight order is sub-optimal:
    /// the highest-weight load is not the one that must go first to keep the
    /// second tile busy.
    fn tricky() -> (SubtaskGraph, InitialSchedule, Platform) {
        let mut g = SubtaskGraph::new("tricky");
        // slot0: a(6ms) then c(20ms); slot1: b(5ms) then d(5ms).
        let a = g.add_subtask(Subtask::new("a", Time::from_millis(6), ConfigId::new(0)));
        let b = g.add_subtask(Subtask::new("b", Time::from_millis(5), ConfigId::new(1)));
        let c = g.add_subtask(Subtask::new("c", Time::from_millis(20), ConfigId::new(2)));
        let d = g.add_subtask(Subtask::new("d", Time::from_millis(5), ConfigId::new(3)));
        g.add_dependency(a, c).unwrap();
        g.add_dependency(b, d).unwrap();
        let schedule = InitialSchedule::from_assignment(
            &g,
            vec![
                PeAssignment::Tile(TileSlot::new(0)),
                PeAssignment::Tile(TileSlot::new(1)),
                PeAssignment::Tile(TileSlot::new(0)),
                PeAssignment::Tile(TileSlot::new(1)),
            ],
        )
        .unwrap();
        let platform = Platform::virtex_like(2).unwrap();
        (g, schedule, platform)
    }

    #[test]
    fn never_worse_than_the_list_scheduler() {
        let (g, schedule, platform) = tricky();
        let problem = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        let list = ListScheduler::new().schedule(&problem).unwrap();
        let exact = BranchBoundScheduler::new().schedule(&problem).unwrap();
        assert!(exact.penalty() <= list.penalty());
        let on_demand = OnDemandScheduler::new().schedule(&problem).unwrap();
        assert!(exact.penalty() <= on_demand.penalty());
    }

    #[test]
    fn matches_exhaustive_enumeration_on_a_small_problem() {
        let (g, schedule, platform) = tricky();
        let problem = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        let loads = problem.loads();
        // Enumerate every permutation by brute force and keep the best.
        let mut best = Time::MAX;
        let mut order = loads.clone();
        permute(&mut order, 0, &mut |candidate| {
            if let Ok(result) = simulate(&problem, LoadStrategy::FixedOrder(candidate)) {
                best = best.min(result.penalty());
            }
        });
        let exact = BranchBoundScheduler::new().schedule(&problem).unwrap();
        assert_eq!(exact.penalty(), best);
    }

    fn permute(items: &mut Vec<SubtaskId>, k: usize, visit: &mut impl FnMut(&[SubtaskId])) {
        if k == items.len() {
            visit(items);
            return;
        }
        for i in k..items.len() {
            items.swap(k, i);
            permute(items, k + 1, visit);
            items.swap(k, i);
        }
    }

    #[test]
    fn falls_back_to_the_heuristic_beyond_the_limit() {
        let (g, schedule, platform) = tricky();
        let problem = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        let limited = BranchBoundScheduler::new().with_exhaustive_limit(1);
        let list = ListScheduler::new().schedule(&problem).unwrap();
        let fallback = limited.schedule(&problem).unwrap();
        assert_eq!(fallback.penalty(), list.penalty());
        assert_eq!(limited.exhaustive_limit(), 1);
    }

    #[test]
    fn empty_load_set_is_trivially_optimal() {
        // Two independent subtasks, one per slot, both resident: no loads.
        let mut g = SubtaskGraph::new("resident");
        let a = g.add_subtask(Subtask::new("a", Time::from_millis(6), ConfigId::new(0)));
        let b = g.add_subtask(Subtask::new("b", Time::from_millis(9), ConfigId::new(1)));
        let schedule = InitialSchedule::from_assignment(
            &g,
            vec![
                PeAssignment::Tile(TileSlot::new(0)),
                PeAssignment::Tile(TileSlot::new(1)),
            ],
        )
        .unwrap();
        let platform = Platform::virtex_like(2).unwrap();
        let resident: BTreeSet<SubtaskId> = [a, b].into_iter().collect();
        let problem = PrefetchProblem::with_resident(&g, &schedule, &platform, &resident).unwrap();
        assert_eq!(problem.load_count(), 0);
        let exact = BranchBoundScheduler::new().schedule(&problem).unwrap();
        assert_eq!(exact.penalty(), Time::ZERO);
        assert_eq!(optimal_penalty(&problem).unwrap(), Time::ZERO);
    }

    #[test]
    fn residency_cannot_remove_a_second_configuration_on_the_same_slot() {
        // Marking every subtask resident is physically impossible when a slot
        // hosts two different configurations: the second one must be loaded.
        let (g, schedule, platform) = tricky();
        let resident: BTreeSet<SubtaskId> = g.ids().collect();
        let problem = PrefetchProblem::with_resident(&g, &schedule, &platform, &resident).unwrap();
        assert_eq!(problem.load_count(), 2);
        let exact = BranchBoundScheduler::new().schedule(&problem).unwrap();
        // The loads of c and d hide only partially behind a and b.
        assert_eq!(exact.penalty(), Time::from_millis(4));
    }
}
