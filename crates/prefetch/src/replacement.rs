//! The replacement module: mapping abstract tile slots onto physical tiles so
//! that as many configurations as possible are reused (ref [6]).
//!
//! The tiles of the ICN platform are identical, so an initial schedule only
//! talks about abstract slots. When a task is activated, the replacement
//! module decides which physical tile backs each slot. A good decision puts a
//! slot on a tile that already holds the configuration the slot needs first,
//! and evicts configurations that are least likely to be needed again.

use std::collections::BTreeSet;

use drhw_model::{ConfigId, InitialSchedule, SubtaskGraph, TileId, TileSlot};
use serde::{Deserialize, Serialize};

use crate::error::PrefetchError;
use crate::reuse::{TileContents, TileMapping};

/// The policy used to map slots onto physical tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ReplacementPolicy {
    /// Match slots to tiles already holding their first configuration, then
    /// fill the remaining slots with the least-recently-used tiles (the
    /// behaviour of ref [6]; default).
    #[default]
    ReuseAware,
    /// Ignore contents entirely and always evict the least-recently-used
    /// tiles (ablation baseline).
    LeastRecentlyUsed,
    /// Map slot *i* to tile *i* (the degenerate baseline: no replacement
    /// intelligence at all).
    Direct,
}

impl ReplacementPolicy {
    /// Parses the stable [`Display`](std::fmt::Display) name of a policy
    /// (`reuse-aware`, `lru`, `direct`) — the names used in job specs and
    /// ablation labels. Returns `None` for anything else.
    pub fn parse(name: &str) -> Option<ReplacementPolicy> {
        match name {
            "reuse-aware" => Some(ReplacementPolicy::ReuseAware),
            "lru" => Some(ReplacementPolicy::LeastRecentlyUsed),
            "direct" => Some(ReplacementPolicy::Direct),
            _ => None,
        }
    }
}

impl std::fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplacementPolicy::ReuseAware => write!(f, "reuse-aware"),
            ReplacementPolicy::LeastRecentlyUsed => write!(f, "lru"),
            ReplacementPolicy::Direct => write!(f, "direct"),
        }
    }
}

/// Chooses a physical tile for every abstract slot of the schedule.
///
/// # Errors
///
/// Returns [`PrefetchError::NotEnoughTiles`] if the schedule uses more slots
/// than the platform has tiles.
pub fn assign_tiles(
    graph: &SubtaskGraph,
    schedule: &InitialSchedule,
    contents: &TileContents,
    policy: ReplacementPolicy,
) -> Result<TileMapping, PrefetchError> {
    assign_tiles_protecting(graph, schedule, contents, policy, &BTreeSet::new())
}

/// Like [`assign_tiles`], but additionally avoids evicting tiles whose
/// resident configuration appears in `protected` (the configurations the tasks
/// scheduled next will want). The run-time scheduler knows the upcoming task
/// sequence, so the replacement module can use it to maximise reuse — this is
/// the behaviour of the replacement module of ref [6].
///
/// # Errors
///
/// Returns [`PrefetchError::NotEnoughTiles`] if the schedule uses more slots
/// than the platform has tiles.
pub fn assign_tiles_protecting(
    graph: &SubtaskGraph,
    schedule: &InitialSchedule,
    contents: &TileContents,
    policy: ReplacementPolicy,
    protected: &BTreeSet<ConfigId>,
) -> Result<TileMapping, PrefetchError> {
    let slots = schedule.slot_count();
    let tiles = contents.tile_count();
    if slots > tiles {
        return Err(PrefetchError::NotEnoughTiles {
            required: slots,
            available: tiles,
        });
    }
    let mapping = match policy {
        ReplacementPolicy::Direct => TileMapping::identity(slots),
        ReplacementPolicy::LeastRecentlyUsed => lru_mapping(slots, contents),
        ReplacementPolicy::ReuseAware => reuse_aware_mapping(graph, schedule, contents, protected),
    };
    Ok(mapping)
}

/// The configuration each slot would like to find already loaded: the one of
/// its first DRHW subtask.
fn desired_configs(graph: &SubtaskGraph, schedule: &InitialSchedule) -> Vec<Option<ConfigId>> {
    (0..schedule.slot_count())
        .map(|s| {
            schedule
                .first_on_slot(TileSlot::new(s))
                .and_then(|id| graph.required_config(id))
        })
        .collect()
}

fn lru_mapping(slots: usize, contents: &TileContents) -> TileMapping {
    let mut tiles: Vec<TileId> = (0..contents.tile_count()).map(TileId::new).collect();
    tiles.sort_by_key(|&t| (contents.last_used(t), t.index()));
    TileMapping::new(tiles.into_iter().take(slots).collect())
}

fn reuse_aware_mapping(
    graph: &SubtaskGraph,
    schedule: &InitialSchedule,
    contents: &TileContents,
    protected: &BTreeSet<ConfigId>,
) -> TileMapping {
    let desired = desired_configs(graph, schedule);
    let slots = desired.len();
    let mut assigned: Vec<Option<TileId>> = vec![None; slots];
    let mut taken = vec![false; contents.tile_count()];

    // Pass 1: give every slot a tile that already holds its first
    // configuration (greedy, slot order is deterministic).
    for (slot, desired_config) in desired.iter().enumerate() {
        let Some(config) = desired_config else {
            continue;
        };
        if let Some(tile) = contents
            .tiles_holding(*config)
            .into_iter()
            .find(|t| !taken[t.index()])
        {
            assigned[slot] = Some(tile);
            taken[tile.index()] = true;
        }
    }

    // Pass 2: fill the remaining slots with free tiles, preferring tiles whose
    // content is wanted by nobody (neither this task nor the protected
    // configurations of upcoming tasks) and, among those, the least recently
    // used — so nothing useful is evicted.
    let wanted: Vec<ConfigId> = desired.iter().flatten().copied().collect();
    let mut free: Vec<TileId> = (0..contents.tile_count())
        .map(TileId::new)
        .filter(|t| !taken[t.index()])
        .collect();
    free.sort_by_key(|&t| {
        let holds_wanted = contents
            .config_on(t)
            .map(|c| wanted.contains(&c))
            .unwrap_or(false);
        let holds_protected = contents
            .config_on(t)
            .map(|c| protected.contains(&c))
            .unwrap_or(false);
        (
            holds_wanted,
            holds_protected,
            contents.last_used(t),
            t.index(),
        )
    });
    let mut free_iter = free.into_iter();
    for slot_tile in assigned.iter_mut() {
        if slot_tile.is_none() {
            *slot_tile = free_iter.next();
        }
    }

    TileMapping::new(
        assigned
            .into_iter()
            .map(|t| t.expect("slot count was checked against tile count"))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reuse::reusable_subtasks;
    use drhw_model::{PeAssignment, Subtask, SubtaskId, Time};

    fn two_slot_schedule() -> (SubtaskGraph, InitialSchedule) {
        let mut g = SubtaskGraph::new("two-slot");
        let a = g.add_subtask(Subtask::new("a", Time::from_millis(5), ConfigId::new(100)));
        let b = g.add_subtask(Subtask::new("b", Time::from_millis(5), ConfigId::new(200)));
        g.add_dependency(a, b).unwrap();
        let schedule = InitialSchedule::from_assignment(
            &g,
            vec![
                PeAssignment::Tile(TileSlot::new(0)),
                PeAssignment::Tile(TileSlot::new(1)),
            ],
        )
        .unwrap();
        (g, schedule)
    }

    #[test]
    fn direct_policy_is_the_identity() {
        let (g, schedule) = two_slot_schedule();
        let contents = TileContents::new(4);
        let m = assign_tiles(&g, &schedule, &contents, ReplacementPolicy::Direct).unwrap();
        assert_eq!(m.tile_of(TileSlot::new(0)), TileId::new(0));
        assert_eq!(m.tile_of(TileSlot::new(1)), TileId::new(1));
    }

    #[test]
    fn reuse_aware_maps_slots_onto_tiles_holding_their_configuration() {
        let (g, schedule) = two_slot_schedule();
        let mut contents = TileContents::new(4);
        contents.record_load(TileId::new(3), ConfigId::new(100), Time::from_millis(2));
        contents.record_load(TileId::new(1), ConfigId::new(200), Time::from_millis(2));
        let m = assign_tiles(&g, &schedule, &contents, ReplacementPolicy::ReuseAware).unwrap();
        assert_eq!(m.tile_of(TileSlot::new(0)), TileId::new(3));
        assert_eq!(m.tile_of(TileSlot::new(1)), TileId::new(1));
        let resident = reusable_subtasks(&g, &schedule, &m, &contents);
        assert_eq!(resident.len(), 2);
    }

    #[test]
    fn reuse_aware_prefers_evicting_unwanted_and_old_tiles() {
        let (g, schedule) = two_slot_schedule();
        let mut contents = TileContents::new(4);
        // Tile 0 holds a configuration wanted by slot 1 (cfg200) but slot 1
        // can be matched directly; tile 2 holds an unrelated config used long
        // ago; tile 3 holds an unrelated config used recently.
        contents.record_load(TileId::new(0), ConfigId::new(200), Time::from_millis(50));
        contents.record_load(TileId::new(2), ConfigId::new(999), Time::from_millis(1));
        contents.record_load(TileId::new(3), ConfigId::new(888), Time::from_millis(90));
        let m = assign_tiles(&g, &schedule, &contents, ReplacementPolicy::ReuseAware).unwrap();
        // Slot 1 matches tile 0 (cfg200); slot 0 has no match and must pick the
        // oldest tile not holding a wanted config: the empty tile 1.
        assert_eq!(m.tile_of(TileSlot::new(1)), TileId::new(0));
        assert_eq!(m.tile_of(TileSlot::new(0)), TileId::new(1));
    }

    #[test]
    fn lru_policy_picks_the_oldest_tiles_regardless_of_contents() {
        let (g, schedule) = two_slot_schedule();
        let mut contents = TileContents::new(3);
        contents.record_load(TileId::new(0), ConfigId::new(100), Time::from_millis(30));
        contents.record_load(TileId::new(1), ConfigId::new(200), Time::from_millis(20));
        contents.record_load(TileId::new(2), ConfigId::new(300), Time::from_millis(10));
        let m = assign_tiles(
            &g,
            &schedule,
            &contents,
            ReplacementPolicy::LeastRecentlyUsed,
        )
        .unwrap();
        // Oldest first: tile 2 then tile 1 — even though tile 0 holds cfg100.
        assert_eq!(m.tile_of(TileSlot::new(0)), TileId::new(2));
        assert_eq!(m.tile_of(TileSlot::new(1)), TileId::new(1));
    }

    #[test]
    fn too_few_tiles_is_rejected() {
        let (g, schedule) = two_slot_schedule();
        let contents = TileContents::new(1);
        let err =
            assign_tiles(&g, &schedule, &contents, ReplacementPolicy::ReuseAware).unwrap_err();
        assert_eq!(
            err,
            PrefetchError::NotEnoughTiles {
                required: 2,
                available: 1
            }
        );
    }

    #[test]
    fn protected_configurations_are_evicted_last() {
        let (g, schedule) = two_slot_schedule();
        let mut contents = TileContents::new(3);
        // Tile 0 holds a configuration a *later* task will want; tile 2 holds
        // junk used more recently than tile 0.
        contents.record_load(TileId::new(0), ConfigId::new(500), Time::from_millis(1));
        contents.record_load(TileId::new(2), ConfigId::new(999), Time::from_millis(40));
        let protected: BTreeSet<ConfigId> = [ConfigId::new(500)].into_iter().collect();
        let m = assign_tiles_protecting(
            &g,
            &schedule,
            &contents,
            ReplacementPolicy::ReuseAware,
            &protected,
        )
        .unwrap();
        // Both slots avoid tile 0 even though it is the least recently used.
        assert_ne!(m.tile_of(TileSlot::new(0)), TileId::new(0));
        assert_ne!(m.tile_of(TileSlot::new(1)), TileId::new(0));
        // Without protection, the old tile 0 is recycled before the newer tile 2.
        let unprotected =
            assign_tiles(&g, &schedule, &contents, ReplacementPolicy::ReuseAware).unwrap();
        assert_eq!(unprotected.tile_of(TileSlot::new(1)), TileId::new(0));
    }

    #[test]
    fn policies_display_their_names() {
        assert_eq!(ReplacementPolicy::ReuseAware.to_string(), "reuse-aware");
        assert_eq!(ReplacementPolicy::LeastRecentlyUsed.to_string(), "lru");
        assert_eq!(ReplacementPolicy::Direct.to_string(), "direct");
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::ReuseAware);
    }

    #[test]
    fn more_tiles_than_slots_leave_unwanted_tiles_untouched() {
        let (g, schedule) = two_slot_schedule();
        let mut contents = TileContents::new(8);
        // A configuration some *other* task may want later sits on tile 5.
        contents.record_load(TileId::new(5), ConfigId::new(777), Time::from_millis(5));
        let m = assign_tiles(&g, &schedule, &contents, ReplacementPolicy::ReuseAware).unwrap();
        assert_ne!(m.tile_of(TileSlot::new(0)), TileId::new(5));
        assert_ne!(m.tile_of(TileSlot::new(1)), TileId::new(5));
        // Resident check still works with the wider platform.
        let resident = reusable_subtasks(&g, &schedule, &m, &contents);
        assert!(resident.is_empty());
        assert!(!resident.contains(&SubtaskId::new(0)));
    }
}
