//! Design-time-only prefetch (the second baseline of §7).
//!
//! An optimal prefetch schedule is computed offline under the worst-case
//! assumption that *every* DRHW subtask must be loaded. Because the schedule
//! is frozen at design time, run-time knowledge about resident configurations
//! cannot be exploited: "it is not possible to reuse previously loaded
//! subtasks since at design-time there is not enough information available".
//! This policy reduced the multimedia overhead from 23 % to 7 % in the paper,
//! and from 71 % to 25 % for the 3-D renderer.

use drhw_model::{InitialSchedule, Platform, SubtaskGraph, SubtaskId, Time};
use serde::{Deserialize, Serialize};

use crate::branch_bound::{BranchBoundScheduler, SearchCache};
use crate::error::PrefetchError;
use crate::problem::{ExecutionResult, PrefetchProblem};
use crate::scheduler::PrefetchScheduler;

/// The artifact produced by the design-time-only prefetch flow: a fixed load
/// order and the penalty it pays on every execution of the task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignTimePrefetch {
    load_order: Vec<SubtaskId>,
    penalty: Time,
    ideal_makespan: Time,
}

impl DesignTimePrefetch {
    /// Computes the design-time prefetch schedule for one initial schedule,
    /// using branch & bound (with the list-scheduler fallback for large
    /// graphs) under the all-loads assumption.
    ///
    /// # Errors
    ///
    /// Returns an error if the model is inconsistent (e.g. more slots than
    /// tiles).
    pub fn compute(
        graph: &SubtaskGraph,
        schedule: &InitialSchedule,
        platform: &Platform,
    ) -> Result<Self, PrefetchError> {
        Self::compute_with(graph, schedule, platform, &BranchBoundScheduler::new())
    }

    /// Same as [`DesignTimePrefetch::compute`], with an explicit scheduler
    /// (useful for ablations).
    ///
    /// # Errors
    ///
    /// Returns an error if the model is inconsistent.
    pub fn compute_with(
        graph: &SubtaskGraph,
        schedule: &InitialSchedule,
        platform: &Platform,
        scheduler: &dyn PrefetchScheduler,
    ) -> Result<Self, PrefetchError> {
        let problem = PrefetchProblem::new(graph, schedule, platform)?;
        let result = scheduler.schedule(&problem)?;
        Ok(DesignTimePrefetch {
            load_order: result.load_order().to_vec(),
            penalty: result.penalty(),
            ideal_makespan: problem.ideal_makespan(),
        })
    }

    /// Like [`compute`](Self::compute), reusing a caller-provided search
    /// cache. The all-loads problem solved here is exactly the first round of
    /// the critical-set loop over the same schedule, so sharing one cache
    /// between this call and
    /// [`HybridPrefetch::compute_assisted`](crate::HybridPrefetch::compute_assisted)
    /// lets the loop replay this search's prefix evaluations instead of
    /// redoing them. Results are bit-identical to [`compute`](Self::compute).
    ///
    /// # Errors
    ///
    /// Returns an error if the model is inconsistent.
    pub fn compute_assisted(
        graph: &SubtaskGraph,
        schedule: &InitialSchedule,
        platform: &Platform,
        cache: &mut SearchCache,
    ) -> Result<Self, PrefetchError> {
        let problem = PrefetchProblem::new(graph, schedule, platform)?;
        let result = BranchBoundScheduler::new().schedule_assisted(&problem, cache, None)?;
        Ok(DesignTimePrefetch {
            load_order: result.load_order().to_vec(),
            penalty: result.penalty(),
            ideal_makespan: problem.ideal_makespan(),
        })
    }

    /// Reconstructs an artifact from its stored fields (the on-disk plan
    /// cache). The caller is responsible for the fields describing a real
    /// design-time schedule — nothing is re-derived or validated here.
    pub fn from_parts(load_order: Vec<SubtaskId>, penalty: Time, ideal_makespan: Time) -> Self {
        DesignTimePrefetch {
            load_order,
            penalty,
            ideal_makespan,
        }
    }

    /// The frozen load order executed on every run of the task.
    pub fn load_order(&self) -> &[SubtaskId] {
        &self.load_order
    }

    /// The reconfiguration penalty this policy pays on every execution,
    /// regardless of which configurations happen to be resident.
    pub fn penalty(&self) -> Time {
        self.penalty
    }

    /// The ideal makespan of the underlying schedule.
    pub fn ideal_makespan(&self) -> Time {
        self.ideal_makespan
    }

    /// The overhead ratio paid on every execution (penalty / ideal makespan).
    pub fn overhead_ratio(&self) -> f64 {
        self.penalty.ratio_of(self.ideal_makespan)
    }

    /// Number of loads the frozen schedule performs on every execution.
    pub fn load_count(&self) -> usize {
        self.load_order.len()
    }

    /// Replays the frozen schedule against a problem (for inspection).
    ///
    /// # Errors
    ///
    /// Returns an error if `problem` does not require exactly the loads of the
    /// frozen order (the policy never adapts, so the caller must pass the
    /// worst-case problem this artifact was computed from).
    pub fn replay(&self, problem: &PrefetchProblem<'_>) -> Result<ExecutionResult, PrefetchError> {
        crate::executor::simulate(
            problem,
            crate::executor::LoadStrategy::FixedOrder(&self.load_order),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ListScheduler, OnDemandScheduler};
    use drhw_model::{ConfigId, PeAssignment, Subtask, TileSlot};

    fn two_stage() -> (SubtaskGraph, InitialSchedule, Platform) {
        let mut g = SubtaskGraph::new("two-stage");
        let a = g.add_subtask(Subtask::new("a", Time::from_millis(12), ConfigId::new(0)));
        let b = g.add_subtask(Subtask::new("b", Time::from_millis(8), ConfigId::new(1)));
        g.add_dependency(a, b).unwrap();
        let schedule = InitialSchedule::from_assignment(
            &g,
            vec![
                PeAssignment::Tile(TileSlot::new(0)),
                PeAssignment::Tile(TileSlot::new(1)),
            ],
        )
        .unwrap();
        let platform = Platform::virtex_like(2).unwrap();
        (g, schedule, platform)
    }

    #[test]
    fn compute_produces_the_optimal_fixed_order() {
        let (g, schedule, platform) = two_stage();
        let dt = DesignTimePrefetch::compute(&g, &schedule, &platform).unwrap();
        // Only the first load is exposed: the 4 ms of load "a".
        assert_eq!(dt.penalty(), Time::from_millis(4));
        assert_eq!(dt.ideal_makespan(), Time::from_millis(20));
        assert!((dt.overhead_ratio() - 0.2).abs() < 1e-9);
        assert_eq!(dt.load_count(), 2);
        assert_eq!(dt.load_order()[0].index(), 0);
    }

    #[test]
    fn penalty_is_constant_even_when_reuse_would_be_possible() {
        // The design-time policy cannot benefit from residency: the API makes
        // that explicit by exposing a single stored penalty.
        let (g, schedule, platform) = two_stage();
        let dt = DesignTimePrefetch::compute(&g, &schedule, &platform).unwrap();
        let before = dt.penalty();
        // Nothing about the artifact changes between executions.
        assert_eq!(dt.penalty(), before);
    }

    #[test]
    fn compute_with_alternative_schedulers() {
        let (g, schedule, platform) = two_stage();
        let with_list =
            DesignTimePrefetch::compute_with(&g, &schedule, &platform, &ListScheduler::new())
                .unwrap();
        let with_od =
            DesignTimePrefetch::compute_with(&g, &schedule, &platform, &OnDemandScheduler::new())
                .unwrap();
        assert!(with_list.penalty() <= with_od.penalty());
    }

    #[test]
    fn replay_reproduces_the_stored_penalty() {
        let (g, schedule, platform) = two_stage();
        let dt = DesignTimePrefetch::compute(&g, &schedule, &platform).unwrap();
        let problem = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        let replayed = dt.replay(&problem).unwrap();
        assert_eq!(replayed.penalty(), dt.penalty());
    }
}
