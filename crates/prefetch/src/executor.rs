//! The shared load/execution timing engine.
//!
//! Every prefetch policy in this crate — on-demand loading, the run-time list
//! scheduler of ref [7], the branch & bound optimum and the stored hybrid
//! schedules — boils down to choosing the order in which the single
//! reconfiguration port performs the needed loads. This module simulates a
//! chosen order (or an online choice rule) against the three constraints of
//! the platform model:
//!
//! 1. a subtask starts when its graph predecessors and the previous subtask on
//!    its PE have finished and its configuration is resident;
//! 2. a load may only start once the previous subtask on the target tile has
//!    finished (reconfiguring destroys the configuration still in use);
//! 3. the port performs loads one at a time.

use drhw_model::{ExecutionWindow, LoadWindow, SubtaskId, Time};

use crate::error::PrefetchError;
use crate::problem::{ExecutionResult, PrefetchProblem};

/// How the port chooses its next load.
#[derive(Debug, Clone)]
pub(crate) enum LoadStrategy<'o> {
    /// Perform the loads exactly in the given order.
    FixedOrder(&'o [SubtaskId]),
    /// Whenever the port is free, start the startable load with the highest
    /// criticality weight (the run-time heuristic of ref [7]).
    ListByWeight,
    /// No prefetch: a load is only requested once the subtask could otherwise
    /// start executing; requests are served first-come first-served.
    OnDemand,
}

/// Simulates the execution of the problem's initial schedule under the given
/// load strategy.
pub(crate) fn simulate(
    problem: &PrefetchProblem<'_>,
    strategy: LoadStrategy<'_>,
) -> Result<ExecutionResult, PrefetchError> {
    simulate_with_needs(problem, strategy, problem.needs_load_slice())
}

/// Like [`simulate`], but with the needs-load flags supplied by the caller
/// instead of read from the problem. The branch & bound search evaluates many
/// "only this prefix of loads costs anything" relaxations of one problem;
/// overriding the flags here replaces a full problem clone per search node.
/// Passing `problem.needs_load_slice()` is exactly [`simulate`] — everything
/// else about the problem (slot map, weights, ideal makespan, timing offsets)
/// is needs-independent.
pub(crate) fn simulate_with_needs(
    problem: &PrefetchProblem<'_>,
    strategy: LoadStrategy<'_>,
    needs_load: &[bool],
) -> Result<ExecutionResult, PrefetchError> {
    let graph = problem.graph();
    let schedule = problem.schedule();
    let latency = problem.platform().reconfig_latency();
    let n = graph.len();
    let topo = schedule.combined_topological_order(graph)?;

    let loads: Vec<SubtaskId> = graph.ids().filter(|id| needs_load[id.index()]).collect();
    if let LoadStrategy::FixedOrder(order) = &strategy {
        validate_order(&loads, order)?;
    }

    let mut exec_start: Vec<Option<Time>> = vec![None; n];
    let mut exec_finish: Vec<Option<Time>> = vec![None; n];
    let mut ready_without_load: Vec<Time> = vec![Time::ZERO; n];
    let mut loaded_at: Vec<Option<Time>> = vec![None; n];
    let mut pending: Vec<SubtaskId> = loads.clone();
    let mut performed: Vec<SubtaskId> = Vec::with_capacity(pending.len());
    let mut load_windows: Vec<LoadWindow> = Vec::with_capacity(pending.len());
    let mut port_free = problem.earliest_port_start();
    let mut fixed_cursor = 0usize;
    let mut remaining_execs = n;

    while remaining_execs > 0 || !pending.is_empty() {
        let mut progress = false;

        // Phase 1: schedule every execution whose dependencies are all timed.
        for &id in &topo {
            if exec_finish[id.index()].is_some() {
                continue;
            }
            let Some(ready) = exec_ready_time(problem, &exec_finish, id) else {
                continue;
            };
            if needs_load[id.index()] && loaded_at[id.index()].is_none() {
                // Remember how long the subtask would have waited anyway so the
                // direct load delay can be separated from inherited delays.
                ready_without_load[id.index()] = ready;
                continue;
            }
            let start = match loaded_at[id.index()] {
                Some(resident) => ready.max(resident),
                None => ready,
            };
            ready_without_load[id.index()] = ready;
            exec_start[id.index()] = Some(start);
            exec_finish[id.index()] = Some(start + graph.subtask(id).exec_time());
            remaining_execs -= 1;
            progress = true;
        }

        // Phase 2: let the port start (at most) one more load.
        if !pending.is_empty() {
            let pick = match &strategy {
                LoadStrategy::FixedOrder(order) => {
                    pick_fixed(order, &mut fixed_cursor, &pending, |id| {
                        tile_available(problem, &exec_finish, id)
                    })
                }
                LoadStrategy::ListByWeight => {
                    pick_by_weight(problem, &pending, &exec_finish, port_free)
                }
                LoadStrategy::OnDemand => pick_on_demand(problem, &pending, &exec_finish),
            };
            if let Some((id, available)) = pick {
                let start = port_free.max(available);
                let finish = start + latency;
                loaded_at[id.index()] = Some(finish);
                port_free = finish;
                load_windows.push(LoadWindow {
                    subtask: id,
                    slot: problem
                        .slot_of(id)
                        .expect("only DRHW subtasks ever need a load"),
                    start,
                    finish,
                });
                pending.retain(|&p| p != id);
                performed.push(id);
                progress = true;
            }
        }

        if !progress {
            return Err(PrefetchError::DeadlockedOrder);
        }
    }

    let executions: Vec<ExecutionWindow> = graph
        .ids()
        .map(|id| ExecutionWindow {
            subtask: id,
            pe: schedule.assignment(id),
            start: exec_start[id.index()].expect("all executions were scheduled"),
            finish: exec_finish[id.index()].expect("all executions were scheduled"),
        })
        .collect();
    let load_delays: Vec<Time> = graph
        .ids()
        .map(|id| {
            exec_start[id.index()]
                .expect("all executions were scheduled")
                .saturating_sub(ready_without_load[id.index()])
        })
        .collect();
    let timed = drhw_model::TimedSchedule::new(executions, load_windows);
    Ok(ExecutionResult::new(
        timed,
        performed,
        load_delays,
        problem.ideal_makespan(),
    ))
}

/// Earliest instant a subtask could start, ignoring its own load. `None` if a
/// dependency has not been timed yet.
fn exec_ready_time(
    problem: &PrefetchProblem<'_>,
    exec_finish: &[Option<Time>],
    id: SubtaskId,
) -> Option<Time> {
    let graph = problem.graph();
    let mut ready = problem.earliest_exec_start();
    for &p in graph.predecessors(id) {
        ready = ready.max(exec_finish[p.index()]?);
    }
    if let Some(prev) = problem.schedule().predecessor_on_pe(id) {
        ready = ready.max(exec_finish[prev.index()]?);
    }
    Some(ready)
}

/// Earliest instant the tile of `id` can accept a load (its previous occupant
/// has finished). `None` while that occupant is still untimed.
fn tile_available(
    problem: &PrefetchProblem<'_>,
    exec_finish: &[Option<Time>],
    id: SubtaskId,
) -> Option<Time> {
    match problem.schedule().predecessor_on_pe(id) {
        Some(prev) => exec_finish[prev.index()],
        None => Some(Time::ZERO),
    }
}

fn pick_fixed(
    order: &[SubtaskId],
    cursor: &mut usize,
    pending: &[SubtaskId],
    available: impl Fn(SubtaskId) -> Option<Time>,
) -> Option<(SubtaskId, Time)> {
    while *cursor < order.len() && !pending.contains(&order[*cursor]) {
        *cursor += 1;
    }
    let next = *order.get(*cursor)?;
    available(next).map(|t| (next, t))
}

fn pick_by_weight(
    problem: &PrefetchProblem<'_>,
    pending: &[SubtaskId],
    exec_finish: &[Option<Time>],
    port_free: Time,
) -> Option<(SubtaskId, Time)> {
    // The port becomes free at `port_free`; consider every load whose tile is
    // (or will be) free by the earliest instant a load could actually start,
    // then take the most critical one.
    let known: Vec<(SubtaskId, Time)> = pending
        .iter()
        .filter_map(|&id| tile_available(problem, exec_finish, id).map(|t| (id, t)))
        .collect();
    let horizon = known.iter().map(|&(_, t)| t).min()?.max(port_free);
    known
        .into_iter()
        .filter(|&(_, t)| t <= horizon)
        .max_by(|a, b| {
            problem
                .weight(a.0)
                .cmp(&problem.weight(b.0))
                .then(b.0.index().cmp(&a.0.index()))
        })
}

fn pick_on_demand(
    problem: &PrefetchProblem<'_>,
    pending: &[SubtaskId],
    exec_finish: &[Option<Time>],
) -> Option<(SubtaskId, Time)> {
    // A load is requested only when the subtask could otherwise execute.
    let requested: Vec<(SubtaskId, Time)> = pending
        .iter()
        .filter_map(|&id| exec_ready_time(problem, exec_finish, id).map(|t| (id, t)))
        .collect();
    requested.into_iter().min_by(|a, b| {
        a.1.cmp(&b.1)
            .then_with(|| problem.weight(b.0).cmp(&problem.weight(a.0)))
            .then(a.0.index().cmp(&b.0.index()))
    })
}

fn validate_order(loads: &[SubtaskId], order: &[SubtaskId]) -> Result<(), PrefetchError> {
    if order.len() != loads.len() {
        let id = order
            .iter()
            .find(|id| !loads.contains(id))
            .copied()
            .or_else(|| loads.iter().find(|id| !order.contains(id)).copied())
            .unwrap_or(SubtaskId::new(0));
        return Err(PrefetchError::InvalidLoadOrder { id });
    }
    for &id in order {
        if !loads.contains(&id) {
            return Err(PrefetchError::InvalidLoadOrder { id });
        }
    }
    let mut seen = std::collections::BTreeSet::new();
    for &id in order {
        if !seen.insert(id) {
            return Err(PrefetchError::InvalidLoadOrder { id });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use drhw_model::{
        ConfigId, InitialSchedule, PeAssignment, Platform, Subtask, SubtaskGraph, TileSlot,
    };

    /// The Fig. 3 example: four subtasks on three tiles, 1 -> {2,3}, 3 -> 4.
    /// Subtask 4 shares its tile with subtask 1, which finishes early enough
    /// for load 4 to be hidden behind the executions of subtasks 2 and 3.
    fn fig3() -> (SubtaskGraph, Vec<SubtaskId>, InitialSchedule, Platform) {
        let mut g = SubtaskGraph::new("fig3");
        let s1 = g.add_subtask(Subtask::new("1", Time::from_millis(10), ConfigId::new(1)));
        let s2 = g.add_subtask(Subtask::new("2", Time::from_millis(12), ConfigId::new(2)));
        let s3 = g.add_subtask(Subtask::new("3", Time::from_millis(6), ConfigId::new(3)));
        let s4 = g.add_subtask(Subtask::new("4", Time::from_millis(8), ConfigId::new(4)));
        g.add_dependency(s1, s2).unwrap();
        g.add_dependency(s1, s3).unwrap();
        g.add_dependency(s3, s4).unwrap();
        let schedule = InitialSchedule::from_assignment(
            &g,
            vec![
                PeAssignment::Tile(TileSlot::new(0)),
                PeAssignment::Tile(TileSlot::new(1)),
                PeAssignment::Tile(TileSlot::new(2)),
                PeAssignment::Tile(TileSlot::new(0)),
            ],
        )
        .unwrap();
        let platform = Platform::virtex_like(3).unwrap();
        (g, vec![s1, s2, s3, s4], schedule, platform)
    }

    #[test]
    fn on_demand_pays_for_every_load_on_the_critical_path() {
        let (g, ids, schedule, platform) = fig3();
        let problem = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        let result = simulate(&problem, LoadStrategy::OnDemand).unwrap();
        // Ideal: s1 0-10, s2 10-22, s3 10-16, s4 16-24 (s4 shares slot0 with s1).
        assert_eq!(problem.ideal_makespan(), Time::from_millis(24));
        // On demand the first load starts at t=0 and every execution start
        // waits for its own 4 ms load; penalty must be strictly positive.
        assert!(result.penalty() > Time::ZERO);
        assert_eq!(result.load_count(), 4);
        // s1 is directly delayed by its own load: nothing else can run first.
        assert_eq!(result.load_delay(ids[0]), Time::from_millis(4));
    }

    #[test]
    fn list_prefetch_hides_all_but_the_first_load() {
        let (g, ids, schedule, platform) = fig3();
        let problem = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        let result = simulate(&problem, LoadStrategy::ListByWeight).unwrap();
        // Only the very first load (subtask 1) cannot be hidden: 4 ms penalty,
        // exactly the "applying prefetch" schedule of Fig. 3(c).
        assert_eq!(result.penalty(), Time::from_millis(4));
        assert_eq!(result.load_delay(ids[0]), Time::from_millis(4));
        assert_eq!(result.load_delay(ids[1]), Time::ZERO);
        assert_eq!(result.load_delay(ids[2]), Time::ZERO);
        assert_eq!(result.load_delay(ids[3]), Time::ZERO);
        assert!(
            result.penalty()
                <= simulate(&problem, LoadStrategy::OnDemand)
                    .unwrap()
                    .penalty()
        );
    }

    #[test]
    fn fixed_order_matches_list_result_for_the_same_order() {
        let (g, _, schedule, platform) = fig3();
        let problem = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        let list = simulate(&problem, LoadStrategy::ListByWeight).unwrap();
        let replay = simulate(&problem, LoadStrategy::FixedOrder(list.load_order())).unwrap();
        assert_eq!(replay.penalty(), list.penalty());
        assert_eq!(replay.timed().makespan(), list.timed().makespan());
    }

    #[test]
    fn fixed_order_rejects_non_permutations() {
        let (g, ids, schedule, platform) = fig3();
        let problem = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        let err = simulate(&problem, LoadStrategy::FixedOrder(&[ids[0]])).unwrap_err();
        assert!(matches!(err, PrefetchError::InvalidLoadOrder { .. }));
        let err = simulate(
            &problem,
            LoadStrategy::FixedOrder(&[ids[0], ids[1], ids[2], ids[2]]),
        )
        .unwrap_err();
        assert!(matches!(err, PrefetchError::InvalidLoadOrder { .. }));
    }

    #[test]
    fn full_residency_leaves_only_the_unavoidable_slot_reload() {
        let (g, ids, schedule, platform) = fig3();
        let resident: std::collections::BTreeSet<SubtaskId> = g.ids().collect();
        let problem = PrefetchProblem::with_resident(&g, &schedule, &platform, &resident).unwrap();
        // Subtask 4 shares slot0 with subtask 1 but uses a different
        // configuration, so its load cannot be removed by residency.
        assert_eq!(problem.load_count(), 1);
        assert_eq!(problem.loads(), vec![ids[3]]);
        let result = simulate(&problem, LoadStrategy::ListByWeight).unwrap();
        // That single load hides behind the execution of subtask 3.
        assert_eq!(result.penalty(), Time::ZERO);
        assert_eq!(
            result.timed().execution_makespan(),
            problem.ideal_makespan()
        );
        assert!(result.trailing_port_idle() > Time::ZERO);
    }

    #[test]
    fn no_loads_means_no_penalty() {
        // A graph whose slots each host a single configuration can be made
        // entirely resident, and then nothing is loaded at all.
        let mut g = SubtaskGraph::new("resident");
        let a = g.add_subtask(Subtask::new("a", Time::from_millis(5), ConfigId::new(0)));
        let b = g.add_subtask(Subtask::new("b", Time::from_millis(7), ConfigId::new(1)));
        g.add_dependency(a, b).unwrap();
        let schedule = InitialSchedule::from_assignment(
            &g,
            vec![
                PeAssignment::Tile(TileSlot::new(0)),
                PeAssignment::Tile(TileSlot::new(1)),
            ],
        )
        .unwrap();
        let platform = Platform::virtex_like(2).unwrap();
        let resident: std::collections::BTreeSet<SubtaskId> = g.ids().collect();
        let problem = PrefetchProblem::with_resident(&g, &schedule, &platform, &resident).unwrap();
        assert_eq!(problem.load_count(), 0);
        let result = simulate(&problem, LoadStrategy::ListByWeight).unwrap();
        assert_eq!(result.penalty(), Time::ZERO);
        assert_eq!(result.timed().makespan(), problem.ideal_makespan());
        assert_eq!(result.trailing_port_idle(), problem.ideal_makespan());
    }

    #[test]
    fn zero_latency_platform_never_pays_overhead() {
        let (g, _, schedule, _) = fig3();
        let platform = Platform::new(3, Time::ZERO).unwrap();
        let problem = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        for strategy in [LoadStrategy::OnDemand, LoadStrategy::ListByWeight] {
            let result = simulate(&problem, strategy).unwrap();
            assert_eq!(result.penalty(), Time::ZERO);
        }
    }

    #[test]
    fn earliest_exec_start_delays_the_whole_body() {
        let (g, _, schedule, platform) = fig3();
        let problem = PrefetchProblem::new(&g, &schedule, &platform)
            .unwrap()
            .with_earliest_exec_start(Time::from_millis(100));
        let result = simulate(&problem, LoadStrategy::ListByWeight).unwrap();
        assert!(
            result.timed().execution_makespan()
                >= problem.ideal_makespan() + Time::from_millis(100)
        );
    }

    #[test]
    fn trailing_idle_window_is_reported() {
        let (g, _, schedule, platform) = fig3();
        let problem = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        let result = simulate(&problem, LoadStrategy::ListByWeight).unwrap();
        // The port performs 4 loads of 4 ms; executions run for ~34 ms, so the
        // port is idle for a while at the end of the task.
        assert!(result.trailing_port_idle() > Time::ZERO);
        assert_eq!(
            result.trailing_port_idle(),
            result.timed().execution_makespan() - result.port_busy_until()
        );
    }

    #[test]
    fn head_of_line_blocking_order_still_completes_when_feasible() {
        // Loading the second slot-1 occupant (s4) first is legal but wasteful:
        // its tile only frees after s2 finishes, so the order [s4, ...] makes
        // the port wait. The executor must not deadlock on it.
        let (g, ids, schedule, platform) = fig3();
        let problem = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        let order = vec![ids[0], ids[1], ids[3], ids[2]];
        let result = simulate(&problem, LoadStrategy::FixedOrder(&order)).unwrap();
        assert!(result.penalty() >= Time::from_millis(4));
    }
}
