//! The reconfiguration-prefetch scheduling problem.
//!
//! > *Given an initial subtask schedule that neglects the reconfiguration
//! > latency, we want to update it including the needed reconfigurations
//! > scheduled in a way that minimizes the overhead they generate.* (§3)
//!
//! [`PrefetchProblem`] bundles everything the heuristics need: the graph, the
//! initial schedule, the platform, the criticality weights, the ideal
//! makespan, and — crucially — *which* subtasks actually need their
//! configuration loaded (the rest are reused).

use std::collections::BTreeSet;

use drhw_model::{
    ConfigId, GraphAnalysis, InitialSchedule, PeAssignment, Platform, SubtaskGraph, SubtaskId,
    TileSlot, Time, TimedSchedule,
};
use serde::{Deserialize, Serialize};

use crate::error::PrefetchError;

/// One instance of the prefetch scheduling problem.
///
/// The problem is parameterised by the set of subtasks whose configuration is
/// *already resident* when the task starts (`resident`): those subtasks are
/// reused and need no load. Everything else mapped on DRHW needs a load,
/// except subtasks that inherit the configuration left on their slot by an
/// earlier subtask of the same task (intra-task reuse).
///
/// # Examples
///
/// ```
/// use drhw_model::{ConfigId, InitialSchedule, PeAssignment, Platform, Subtask, SubtaskGraph,
///     TileSlot, Time};
/// use drhw_prefetch::PrefetchProblem;
///
/// # fn main() -> Result<(), drhw_prefetch::PrefetchError> {
/// let mut g = SubtaskGraph::new("demo");
/// let a = g.add_subtask(Subtask::new("a", Time::from_millis(10), ConfigId::new(0)));
/// let b = g.add_subtask(Subtask::new("b", Time::from_millis(10), ConfigId::new(1)));
/// g.add_dependency(a, b)?;
/// let schedule = InitialSchedule::from_assignment(
///     &g,
///     vec![PeAssignment::Tile(TileSlot::new(0)), PeAssignment::Tile(TileSlot::new(1))],
/// )?;
/// let platform = Platform::virtex_like(2)?;
/// let problem = PrefetchProblem::new(&g, &schedule, &platform)?;
/// assert_eq!(problem.loads().len(), 2);
/// assert_eq!(problem.ideal_makespan(), Time::from_millis(20));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PrefetchProblem<'a> {
    graph: &'a SubtaskGraph,
    schedule: &'a InitialSchedule,
    platform: &'a Platform,
    analysis: GraphAnalysis,
    needs_load: Vec<bool>,
    ideal_makespan: Time,
    earliest_exec_start: Time,
    earliest_port_start: Time,
}

impl<'a> PrefetchProblem<'a> {
    /// Creates the worst-case problem in which *no* configuration is resident
    /// (every DRHW subtask must be loaded, modulo intra-task reuse).
    ///
    /// # Errors
    ///
    /// Returns an error if the schedule needs more tile slots than the
    /// platform has tiles or if the model is otherwise invalid.
    pub fn new(
        graph: &'a SubtaskGraph,
        schedule: &'a InitialSchedule,
        platform: &'a Platform,
    ) -> Result<Self, PrefetchError> {
        Self::with_resident(graph, schedule, platform, &BTreeSet::new())
    }

    /// Creates a problem where the configurations of `resident` subtasks are
    /// already loaded on the tiles mapped to their slots when the task starts.
    ///
    /// Residency only helps a subtask if no *different* configuration is
    /// executed earlier on the same slot (a later load would overwrite it);
    /// the constructor applies that rule automatically, so callers may pass
    /// any subset — e.g. the Critical Subtask set — without pre-filtering.
    ///
    /// # Errors
    ///
    /// Returns an error if the schedule needs more tile slots than the
    /// platform has tiles or if the model is otherwise invalid.
    pub fn with_resident(
        graph: &'a SubtaskGraph,
        schedule: &'a InitialSchedule,
        platform: &'a Platform,
        resident: &BTreeSet<SubtaskId>,
    ) -> Result<Self, PrefetchError> {
        graph.validate()?;
        if schedule.slot_count() > platform.tile_count() {
            return Err(PrefetchError::NotEnoughTiles {
                required: schedule.slot_count(),
                available: platform.tile_count(),
            });
        }
        let analysis = GraphAnalysis::new(graph)?;
        let ideal_makespan = schedule.ideal_timing(graph)?.makespan();
        let needs_load = compute_needs_load(graph, schedule, resident);
        Ok(PrefetchProblem {
            graph,
            schedule,
            platform,
            analysis,
            needs_load,
            ideal_makespan,
            earliest_exec_start: Time::ZERO,
            earliest_port_start: Time::ZERO,
        })
    }

    /// Returns a copy of the problem in which no execution may start before
    /// `instant` (used to model the initialization phase of the hybrid
    /// heuristic, which must complete before the stored schedule starts).
    #[must_use]
    pub fn with_earliest_exec_start(mut self, instant: Time) -> Self {
        self.earliest_exec_start = instant;
        self
    }

    /// Returns a copy of the problem in which the reconfiguration port is
    /// busy until `instant` (used when the port is still finishing loads that
    /// belong to a previous task).
    #[must_use]
    pub fn with_earliest_port_start(mut self, instant: Time) -> Self {
        self.earliest_port_start = instant;
        self
    }

    /// The subtask graph being scheduled.
    pub fn graph(&self) -> &SubtaskGraph {
        self.graph
    }

    /// The reconfiguration-oblivious initial schedule.
    pub fn schedule(&self) -> &InitialSchedule {
        self.schedule
    }

    /// The target platform.
    pub fn platform(&self) -> &Platform {
        self.platform
    }

    /// Precedence-only analysis (criticality weights, ALAP levels).
    pub fn analysis(&self) -> &GraphAnalysis {
        &self.analysis
    }

    /// The paper's criticality weight of a subtask (its bottom level).
    pub fn weight(&self, id: SubtaskId) -> Time {
        self.analysis.weight(id)
    }

    /// Makespan of the initial schedule with zero reconfiguration latency.
    pub fn ideal_makespan(&self) -> Time {
        self.ideal_makespan
    }

    /// Earliest instant any execution may start.
    pub fn earliest_exec_start(&self) -> Time {
        self.earliest_exec_start
    }

    /// Earliest instant the reconfiguration port may start a load.
    pub fn earliest_port_start(&self) -> Time {
        self.earliest_port_start
    }

    /// Whether a subtask requires a configuration load in this problem.
    pub fn needs_load(&self, id: SubtaskId) -> bool {
        self.needs_load[id.index()]
    }

    /// The needs-load flags indexed by subtask position — the executor's view
    /// of [`needs_load`](Self::needs_load), exposed so search code can
    /// evaluate "only these loads cost anything" relaxations without cloning
    /// the whole problem.
    pub(crate) fn needs_load_slice(&self) -> &[bool] {
        &self.needs_load
    }

    /// The subtasks that require a load, in subtask-id order.
    pub fn loads(&self) -> Vec<SubtaskId> {
        self.graph
            .ids()
            .filter(|&id| self.needs_load[id.index()])
            .collect()
    }

    /// The subtasks that require a load, ordered by decreasing criticality
    /// weight (the priority order of the list scheduler and of the hybrid
    /// initialization phase).
    pub fn loads_by_weight_desc(&self) -> Vec<SubtaskId> {
        let mut loads = self.loads();
        loads.sort_by(|a, b| {
            self.weight(*b)
                .cmp(&self.weight(*a))
                .then(a.index().cmp(&b.index()))
        });
        loads
    }

    /// Number of loads in the problem.
    pub fn load_count(&self) -> usize {
        self.needs_load.iter().filter(|&&b| b).count()
    }

    /// Returns a copy of the problem in which only `subset` (a subset of the
    /// current loads) must be loaded and every other load is assumed free.
    ///
    /// Used by the branch & bound scheduler to compute optimistic lower bounds
    /// for partial load orders.
    pub(crate) fn restricted_to_loads(&self, subset: &BTreeSet<SubtaskId>) -> Self {
        let mut clone = self.clone();
        for (index, flag) in clone.needs_load.iter_mut().enumerate() {
            if *flag && !subset.contains(&SubtaskId::new(index)) {
                *flag = false;
            }
        }
        clone
    }

    /// The abstract tile slot a subtask is mapped on, if it runs on DRHW.
    pub fn slot_of(&self, id: SubtaskId) -> Option<TileSlot> {
        self.schedule.assignment(id).tile_slot()
    }

    /// The configuration a subtask requires, if it runs on DRHW.
    pub fn config_of(&self, id: SubtaskId) -> Option<ConfigId> {
        self.graph.required_config(id)
    }
}

/// Determines which subtasks need a configuration load, honouring intra-task
/// reuse (consecutive occurrences of the same configuration on a slot) and
/// externally resident configurations for the first users of each slot.
fn compute_needs_load(
    graph: &SubtaskGraph,
    schedule: &InitialSchedule,
    resident: &BTreeSet<SubtaskId>,
) -> Vec<bool> {
    let mut needs = vec![false; graph.len()];
    for slot_index in 0..schedule.slot_count() {
        let slot = PeAssignment::Tile(TileSlot::new(slot_index));
        // `current` models what is on the tile while the task executes its
        // slot sequence; `None` means "whatever a previous task left there,
        // which is not one of this slot's resident configs".
        let mut current: Option<ConfigId> = None;
        for (position, &id) in schedule.subtasks_on(slot).iter().enumerate() {
            let required = match graph.required_config(id) {
                Some(config) => config,
                None => continue,
            };
            let externally_resident = position == 0 && resident.contains(&id);
            // A subtask marked resident later in the slot sequence can only
            // actually be reused if no different configuration was loaded on
            // the slot since the task started; `current` tracks exactly that.
            let later_resident = position > 0 && resident.contains(&id) && current.is_none();
            if Some(required) == current || externally_resident || later_resident {
                current = Some(required);
                continue;
            }
            needs[id.index()] = true;
            current = Some(required);
        }
    }
    needs
}

/// The outcome of timing a schedule under one load order / policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionResult {
    timed: TimedSchedule,
    order: Vec<SubtaskId>,
    load_delays: Vec<Time>,
    penalty: Time,
    ideal_makespan: Time,
}

impl ExecutionResult {
    pub(crate) fn new(
        timed: TimedSchedule,
        order: Vec<SubtaskId>,
        load_delays: Vec<Time>,
        ideal_makespan: Time,
    ) -> Self {
        let penalty = timed.execution_makespan().saturating_sub(ideal_makespan);
        ExecutionResult {
            timed,
            order,
            load_delays,
            penalty,
            ideal_makespan,
        }
    }

    /// The fully timed schedule (execution and load windows).
    pub fn timed(&self) -> &TimedSchedule {
        &self.timed
    }

    /// The order in which the reconfiguration port performed the loads.
    pub fn load_order(&self) -> &[SubtaskId] {
        &self.order
    }

    /// The stall directly attributable to waiting for a subtask's own load
    /// (zero for subtasks that were resident or whose load finished early).
    pub fn load_delay(&self, id: SubtaskId) -> Time {
        self.load_delays[id.index()]
    }

    /// Subtasks whose own load delayed their execution start.
    pub fn delayed_subtasks(&self) -> Vec<SubtaskId> {
        self.load_delays
            .iter()
            .enumerate()
            .filter(|(_, &d)| !d.is_zero())
            .map(|(i, _)| SubtaskId::new(i))
            .collect()
    }

    /// The reconfiguration penalty: how much later the executions finish
    /// compared to the ideal (zero-latency) makespan.
    pub fn penalty(&self) -> Time {
        self.penalty
    }

    /// The ideal makespan this result is measured against.
    pub fn ideal_makespan(&self) -> Time {
        self.ideal_makespan
    }

    /// Overhead as a fraction of the ideal makespan (e.g. `0.23` for +23 %).
    pub fn overhead_ratio(&self) -> f64 {
        self.penalty.ratio_of(self.ideal_makespan)
    }

    /// Duration of the trailing window during which the reconfiguration port
    /// is idle while the task is still executing. The inter-task optimization
    /// uses this window to start the initialization phase of the next task.
    pub fn trailing_port_idle(&self) -> Time {
        self.timed
            .execution_makespan()
            .saturating_sub(self.port_busy_until())
    }

    /// Instant until which the reconfiguration port is busy.
    pub fn port_busy_until(&self) -> Time {
        self.timed.port_idle_from()
    }

    /// Number of loads performed.
    pub fn load_count(&self) -> usize {
        self.timed.load_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drhw_model::Subtask;

    fn graph_two_slots() -> (SubtaskGraph, Vec<SubtaskId>, InitialSchedule) {
        // slot0: a (cfg0) -> c (cfg0) ; slot1: b (cfg1)
        let mut g = SubtaskGraph::new("p");
        let a = g.add_subtask(Subtask::new("a", Time::from_millis(10), ConfigId::new(0)));
        let b = g.add_subtask(Subtask::new("b", Time::from_millis(10), ConfigId::new(1)));
        let c = g.add_subtask(Subtask::new("c", Time::from_millis(10), ConfigId::new(0)));
        g.add_dependency(a, b).unwrap();
        g.add_dependency(b, c).unwrap();
        let schedule = InitialSchedule::from_assignment(
            &g,
            vec![
                PeAssignment::Tile(TileSlot::new(0)),
                PeAssignment::Tile(TileSlot::new(1)),
                PeAssignment::Tile(TileSlot::new(0)),
            ],
        )
        .unwrap();
        (g, vec![a, b, c], schedule)
    }

    #[test]
    fn worst_case_problem_loads_everything_except_intra_task_reuse() {
        let (g, ids, schedule) = graph_two_slots();
        let platform = Platform::virtex_like(2).unwrap();
        let p = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        // c shares slot0 and cfg0 with a, so it is intra-task reused.
        assert!(p.needs_load(ids[0]));
        assert!(p.needs_load(ids[1]));
        assert!(!p.needs_load(ids[2]));
        assert_eq!(p.load_count(), 2);
        assert_eq!(p.loads(), vec![ids[0], ids[1]]);
    }

    #[test]
    fn resident_first_subtask_is_reused() {
        let (g, ids, schedule) = graph_two_slots();
        let platform = Platform::virtex_like(2).unwrap();
        let resident: BTreeSet<_> = [ids[0]].into_iter().collect();
        let p = PrefetchProblem::with_resident(&g, &schedule, &platform, &resident).unwrap();
        assert!(!p.needs_load(ids[0]));
        assert!(p.needs_load(ids[1]));
        assert!(!p.needs_load(ids[2]));
    }

    #[test]
    fn residency_of_later_subtask_requires_untouched_slot() {
        // slot0 executes a (cfg0) then c (cfg2): marking c resident cannot help
        // because loading cfg0 for a overwrites whatever was on the tile.
        let mut g = SubtaskGraph::new("overwrite");
        let a = g.add_subtask(Subtask::new("a", Time::from_millis(5), ConfigId::new(0)));
        let c = g.add_subtask(Subtask::new("c", Time::from_millis(5), ConfigId::new(2)));
        g.add_dependency(a, c).unwrap();
        let schedule = InitialSchedule::from_assignment(
            &g,
            vec![
                PeAssignment::Tile(TileSlot::new(0)),
                PeAssignment::Tile(TileSlot::new(0)),
            ],
        )
        .unwrap();
        let platform = Platform::virtex_like(1).unwrap();
        let resident: BTreeSet<_> = [c].into_iter().collect();
        let p = PrefetchProblem::with_resident(&g, &schedule, &platform, &resident).unwrap();
        assert!(p.needs_load(a));
        assert!(
            p.needs_load(c),
            "resident config would have been overwritten"
        );
        // Marking *a* resident instead lets c still require its own load.
        let resident: BTreeSet<_> = [a].into_iter().collect();
        let p = PrefetchProblem::with_resident(&g, &schedule, &platform, &resident).unwrap();
        assert!(!p.needs_load(a));
        assert!(p.needs_load(c));
    }

    #[test]
    fn loads_by_weight_puts_critical_subtasks_first() {
        let (g, ids, schedule) = graph_two_slots();
        let platform = Platform::virtex_like(2).unwrap();
        let p = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        // a has weight 30 (whole chain), b has 20.
        assert_eq!(p.loads_by_weight_desc(), vec![ids[0], ids[1]]);
        assert_eq!(p.weight(ids[0]), Time::from_millis(30));
    }

    #[test]
    fn too_few_tiles_is_an_error() {
        let (g, _, schedule) = graph_two_slots();
        let platform = Platform::virtex_like(1).unwrap();
        let err = PrefetchProblem::new(&g, &schedule, &platform).unwrap_err();
        assert_eq!(
            err,
            PrefetchError::NotEnoughTiles {
                required: 2,
                available: 1
            }
        );
    }

    #[test]
    fn builder_style_offsets_are_recorded() {
        let (g, _, schedule) = graph_two_slots();
        let platform = Platform::virtex_like(2).unwrap();
        let p = PrefetchProblem::new(&g, &schedule, &platform)
            .unwrap()
            .with_earliest_exec_start(Time::from_millis(8))
            .with_earliest_port_start(Time::from_millis(2));
        assert_eq!(p.earliest_exec_start(), Time::from_millis(8));
        assert_eq!(p.earliest_port_start(), Time::from_millis(2));
    }

    #[test]
    fn ideal_makespan_matches_initial_schedule() {
        let (g, _, schedule) = graph_two_slots();
        let platform = Platform::virtex_like(2).unwrap();
        let p = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        assert_eq!(p.ideal_makespan(), Time::from_millis(30));
        assert_eq!(p.slot_of(SubtaskId::new(0)), Some(TileSlot::new(0)));
        assert_eq!(p.config_of(SubtaskId::new(2)), Some(ConfigId::new(0)));
    }
}
