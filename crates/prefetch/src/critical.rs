//! Critical Subtask (CS) computation — the design-time core of the hybrid
//! heuristic (Fig. 4 of the paper).
//!
//! The CS subset of a scheduled graph is the minimal set of DRHW subtasks such
//! that, if every CS member is reused and every remaining subtask is loaded,
//! the prefetch heuristic hides the latency of *all* those remaining loads.
//! The selection loop mirrors the paper's pseudo code:
//!
//! ```text
//! CS := {};
//! while compute_penalty(CS) != 0 do
//!     S  := subtasks that generate delays;
//!     S1 := MAX_weight(S);
//!     add S1 to CS;
//! ```
//!
//! `compute_penalty(CS)` runs the configured prefetch scheduler (branch &
//! bound for small graphs, the list heuristic for large ones) assuming the CS
//! members are resident.

use std::collections::BTreeSet;

use drhw_model::{InitialSchedule, Platform, SubtaskGraph, SubtaskId, Time};
use serde::{Deserialize, Serialize};

use crate::branch_bound::{BranchBoundScheduler, SearchCache};
use crate::error::PrefetchError;
use crate::problem::PrefetchProblem;
use crate::scheduler::PrefetchScheduler;

/// The result of the critical-subtask selection for one initial schedule.
///
/// Besides the CS set itself, the analysis stores the load order of the final
/// design-time schedule (the one computed under the "CS reused, everything
/// else loaded" assumption) and the penalty of that schedule — zero whenever
/// the assumption can be realised, which is the common case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalSetAnalysis {
    critical: Vec<SubtaskId>,
    stored_order: Vec<SubtaskId>,
    stored_penalty: Time,
    iterations: usize,
    drhw_subtasks: usize,
}

impl CriticalSetAnalysis {
    /// Runs the CS selection of Fig. 4 with the default design-time scheduler
    /// (branch & bound, falling back to the list heuristic on large graphs).
    ///
    /// # Errors
    ///
    /// Returns an error if the model is inconsistent.
    pub fn compute(
        graph: &SubtaskGraph,
        schedule: &InitialSchedule,
        platform: &Platform,
    ) -> Result<Self, PrefetchError> {
        Self::compute_with(graph, schedule, platform, &BranchBoundScheduler::new())
    }

    /// Same as [`CriticalSetAnalysis::compute`] with an explicit scheduler.
    ///
    /// # Errors
    ///
    /// Returns an error if the model is inconsistent.
    pub fn compute_with(
        graph: &SubtaskGraph,
        schedule: &InitialSchedule,
        platform: &Platform,
        scheduler: &dyn PrefetchScheduler,
    ) -> Result<Self, PrefetchError> {
        let mut cache = SearchCache::new();
        Self::compute_with_cache(graph, schedule, platform, scheduler, &mut cache)
    }

    /// The incremental selection loop: every round re-searches the same
    /// graph/schedule/platform with one more subtask assumed resident, so the
    /// rounds share a [`SearchCache`] (their prefix evaluations key on the
    /// load set and stay valid as the set shrinks) and each round warm-starts
    /// from the previous round's best order filtered to the loads that
    /// remain. Both are pure accelerations — the selected set, stored order
    /// and penalty are bit-identical to [`compute_naive`](Self::compute_naive).
    ///
    /// The cache must be fresh or previously used on the same
    /// graph/schedule/platform (see [`SearchCache::clear`]); sharing it with
    /// the design-time all-loads search of the same schedule is what makes
    /// the first round here nearly free.
    ///
    /// # Errors
    ///
    /// Returns an error if the model is inconsistent.
    pub fn compute_with_cache(
        graph: &SubtaskGraph,
        schedule: &InitialSchedule,
        platform: &Platform,
        scheduler: &dyn PrefetchScheduler,
        cache: &mut SearchCache,
    ) -> Result<Self, PrefetchError> {
        let drhw_subtasks = graph.drhw_subtasks().len();
        let mut critical: BTreeSet<SubtaskId> = BTreeSet::new();
        let mut iterations = 0usize;
        let mut previous_order: Vec<SubtaskId> = Vec::new();
        loop {
            iterations += 1;
            let problem = PrefetchProblem::with_resident(graph, schedule, platform, &critical)?;
            // Warm start: the loads of this round are a subset of the previous
            // round's (marking one more subtask resident never adds loads), so
            // the previous best order filtered to the current loads is a
            // feasible complete order whose penalty bounds the new optimum.
            let warm: Vec<SubtaskId> = previous_order
                .iter()
                .copied()
                .filter(|&id| problem.needs_load(id))
                .collect();
            let warm = (!warm.is_empty()).then_some(warm.as_slice());
            let result = scheduler.schedule_assisted(&problem, cache, warm)?;
            previous_order = result.load_order().to_vec();
            if result.penalty().is_zero() {
                return Ok(Self::assemble(
                    graph,
                    schedule,
                    platform,
                    critical,
                    result.load_order().to_vec(),
                    Time::ZERO,
                    iterations,
                    drhw_subtasks,
                ));
            }
            // Candidates: subtasks whose own load directly delayed them and
            // that are not already assumed resident.
            let candidate = result
                .delayed_subtasks()
                .into_iter()
                .filter(|id| !critical.contains(id))
                .max_by(|a, b| {
                    problem
                        .weight(*a)
                        .cmp(&problem.weight(*b))
                        .then(b.index().cmp(&a.index()))
                });
            // Fall back to the heaviest remaining load if the delay is only
            // inherited (rare, but keeps the loop well-founded).
            let candidate = candidate.or_else(|| {
                result
                    .load_order()
                    .iter()
                    .copied()
                    .filter(|id| !critical.contains(id))
                    .max_by(|a, b| {
                        problem
                            .weight(*a)
                            .cmp(&problem.weight(*b))
                            .then(b.index().cmp(&a.index()))
                    })
            });
            match candidate {
                Some(pick) => {
                    critical.insert(pick);
                }
                None => {
                    // Every loaded subtask is already assumed resident yet a
                    // penalty remains: the residual cannot be removed by
                    // reuse (e.g. a slot forced to hold two configurations in
                    // a row). Store it so the run-time phase can account for it.
                    return Ok(Self::assemble(
                        graph,
                        schedule,
                        platform,
                        critical,
                        result.load_order().to_vec(),
                        result.penalty(),
                        iterations,
                        drhw_subtasks,
                    ));
                }
            }
        }
    }

    /// The original, non-incremental selection loop: every round runs the
    /// scheduler's plain [`schedule`](PrefetchScheduler::schedule) from
    /// scratch, with no shared cache and no warm start. Kept as the
    /// differential reference for the scheduler-equivalence tests;
    /// [`compute_with`](Self::compute_with) must produce bit-identical
    /// analyses.
    ///
    /// # Errors
    ///
    /// Returns an error if the model is inconsistent.
    pub fn compute_naive(
        graph: &SubtaskGraph,
        schedule: &InitialSchedule,
        platform: &Platform,
        scheduler: &dyn PrefetchScheduler,
    ) -> Result<Self, PrefetchError> {
        let drhw_subtasks = graph.drhw_subtasks().len();
        let mut critical: BTreeSet<SubtaskId> = BTreeSet::new();
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            let problem = PrefetchProblem::with_resident(graph, schedule, platform, &critical)?;
            let result = scheduler.schedule(&problem)?;
            if result.penalty().is_zero() {
                return Ok(Self::assemble(
                    graph,
                    schedule,
                    platform,
                    critical,
                    result.load_order().to_vec(),
                    Time::ZERO,
                    iterations,
                    drhw_subtasks,
                ));
            }
            let candidate = result
                .delayed_subtasks()
                .into_iter()
                .filter(|id| !critical.contains(id))
                .max_by(|a, b| {
                    problem
                        .weight(*a)
                        .cmp(&problem.weight(*b))
                        .then(b.index().cmp(&a.index()))
                });
            let candidate = candidate.or_else(|| {
                result
                    .load_order()
                    .iter()
                    .copied()
                    .filter(|id| !critical.contains(id))
                    .max_by(|a, b| {
                        problem
                            .weight(*a)
                            .cmp(&problem.weight(*b))
                            .then(b.index().cmp(&a.index()))
                    })
            });
            match candidate {
                Some(pick) => {
                    critical.insert(pick);
                }
                None => {
                    return Ok(Self::assemble(
                        graph,
                        schedule,
                        platform,
                        critical,
                        result.load_order().to_vec(),
                        result.penalty(),
                        iterations,
                        drhw_subtasks,
                    ));
                }
            }
        }
    }

    /// Reconstructs an analysis from its stored fields (the on-disk plan
    /// cache). The caller is responsible for the fields describing a real
    /// analysis of the same graph/schedule/platform — nothing is re-derived
    /// or validated here.
    pub fn from_parts(
        critical: Vec<SubtaskId>,
        stored_order: Vec<SubtaskId>,
        stored_penalty: Time,
        iterations: usize,
        drhw_subtasks: usize,
    ) -> Self {
        CriticalSetAnalysis {
            critical,
            stored_order,
            stored_penalty,
            iterations,
            drhw_subtasks,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        graph: &SubtaskGraph,
        _schedule: &InitialSchedule,
        _platform: &Platform,
        critical: BTreeSet<SubtaskId>,
        stored_order: Vec<SubtaskId>,
        stored_penalty: Time,
        iterations: usize,
        drhw_subtasks: usize,
    ) -> Self {
        // The initialization phase loads critical subtasks most-critical first;
        // the loading order is decided at design time (paper §6).
        let analysis =
            drhw_model::GraphAnalysis::new(graph).expect("graph validated by the prefetch problem");
        let mut critical: Vec<SubtaskId> = critical.into_iter().collect();
        critical.sort_by(|a, b| {
            analysis
                .weight(*b)
                .cmp(&analysis.weight(*a))
                .then(a.index().cmp(&b.index()))
        });
        CriticalSetAnalysis {
            critical,
            stored_order,
            stored_penalty,
            iterations,
            drhw_subtasks,
        }
    }

    /// The critical subtasks, ordered by decreasing weight (the order the
    /// initialization phase loads them in).
    pub fn critical_subtasks(&self) -> &[SubtaskId] {
        &self.critical
    }

    /// Returns `true` if the given subtask is critical.
    pub fn is_critical(&self, id: SubtaskId) -> bool {
        self.critical.contains(&id)
    }

    /// The load order of the stored design-time schedule (the loads of the
    /// non-critical subtasks).
    pub fn stored_load_order(&self) -> &[SubtaskId] {
        &self.stored_order
    }

    /// The penalty of the stored design-time schedule. Zero whenever the CS
    /// assumption can hide every remaining load, which is the normal outcome.
    pub fn stored_penalty(&self) -> Time {
        self.stored_penalty
    }

    /// Number of `compute_penalty` evaluations the selection loop performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Number of critical subtasks.
    pub fn len(&self) -> usize {
        self.critical.len()
    }

    /// Returns `true` if no subtask is critical (every load can be hidden even
    /// in the worst case).
    pub fn is_empty(&self) -> bool {
        self.critical.is_empty()
    }

    /// Number of DRHW subtasks of the analysed graph (the denominator of
    /// [`critical_fraction`](Self::critical_fraction)).
    pub fn drhw_subtask_count(&self) -> usize {
        self.drhw_subtasks
    }

    /// Fraction of DRHW subtasks that are critical (the paper reports 62 % for
    /// the 3-D rendering application).
    pub fn critical_fraction(&self) -> f64 {
        if self.drhw_subtasks == 0 {
            0.0
        } else {
            self.critical.len() as f64 / self.drhw_subtasks as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ListScheduler, PrefetchProblem};
    use drhw_model::{ConfigId, PeAssignment, Subtask, TileSlot};

    /// The Fig. 3 / Fig. 5 example: only subtask 1 is critical.
    fn fig3() -> (SubtaskGraph, InitialSchedule, Platform) {
        let mut g = SubtaskGraph::new("fig3");
        let s1 = g.add_subtask(Subtask::new("1", Time::from_millis(10), ConfigId::new(1)));
        let s2 = g.add_subtask(Subtask::new("2", Time::from_millis(12), ConfigId::new(2)));
        let s3 = g.add_subtask(Subtask::new("3", Time::from_millis(6), ConfigId::new(3)));
        let s4 = g.add_subtask(Subtask::new("4", Time::from_millis(8), ConfigId::new(4)));
        g.add_dependency(s1, s2).unwrap();
        g.add_dependency(s1, s3).unwrap();
        g.add_dependency(s3, s4).unwrap();
        let schedule = InitialSchedule::from_assignment(
            &g,
            vec![
                PeAssignment::Tile(TileSlot::new(0)),
                PeAssignment::Tile(TileSlot::new(1)),
                PeAssignment::Tile(TileSlot::new(2)),
                PeAssignment::Tile(TileSlot::new(0)),
            ],
        )
        .unwrap();
        let platform = Platform::virtex_like(3).unwrap();
        (g, schedule, platform)
    }

    #[test]
    fn fig3_has_exactly_one_critical_subtask() {
        let (g, schedule, platform) = fig3();
        let cs = CriticalSetAnalysis::compute(&g, &schedule, &platform).unwrap();
        assert_eq!(cs.critical_subtasks(), &[SubtaskId::new(0)]);
        assert!(cs.is_critical(SubtaskId::new(0)));
        assert!(!cs.is_critical(SubtaskId::new(1)));
        assert_eq!(cs.stored_penalty(), Time::ZERO);
        assert_eq!(cs.len(), 1);
        assert!(!cs.is_empty());
        assert!((cs.critical_fraction() - 0.25).abs() < 1e-9);
        // The stored schedule loads the three non-critical subtasks.
        assert_eq!(cs.stored_load_order().len(), 3);
        assert!(!cs.stored_load_order().contains(&SubtaskId::new(0)));
    }

    #[test]
    fn cs_definition_holds_reusing_cs_hides_every_remaining_load() {
        let (g, schedule, platform) = fig3();
        let cs = CriticalSetAnalysis::compute(&g, &schedule, &platform).unwrap();
        let resident: BTreeSet<SubtaskId> = cs.critical_subtasks().iter().copied().collect();
        let problem = PrefetchProblem::with_resident(&g, &schedule, &platform, &resident).unwrap();
        let result = BranchBoundScheduler::new().schedule(&problem).unwrap();
        assert_eq!(result.penalty(), cs.stored_penalty());
    }

    #[test]
    fn cs_is_minimal_for_fig3() {
        // Removing the lone critical subtask (i.e. assuming nothing is
        // resident) must leave a positive penalty — otherwise it would not be
        // critical in the first place.
        let (g, schedule, platform) = fig3();
        let problem = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        let worst = BranchBoundScheduler::new().schedule(&problem).unwrap();
        assert!(worst.penalty() > Time::ZERO);
    }

    #[test]
    fn saturated_port_yields_multiple_critical_subtasks() {
        // Eight independent subtasks of 3 ms on eight tiles with 4 ms loads:
        // the port simply cannot hide 32 ms of loads behind 3 ms of slack, so
        // most subtasks end up critical.
        let mut g = SubtaskGraph::new("saturated");
        for i in 0..8 {
            g.add_subtask(Subtask::new(
                format!("s{i}"),
                Time::from_millis(3),
                ConfigId::new(i),
            ));
        }
        let assignment = (0..8)
            .map(|i| PeAssignment::Tile(TileSlot::new(i)))
            .collect();
        let schedule = InitialSchedule::from_assignment(&g, assignment).unwrap();
        let platform = Platform::virtex_like(8).unwrap();
        let cs = CriticalSetAnalysis::compute(&g, &schedule, &platform).unwrap();
        assert!(
            cs.len() >= 4,
            "expected a large critical set, got {}",
            cs.len()
        );
        assert_eq!(cs.stored_penalty(), Time::ZERO);
        assert!(cs.critical_fraction() >= 0.5);
        // Critical subtasks are ordered by decreasing weight.
        let analysis = drhw_model::GraphAnalysis::new(&g).unwrap();
        let weights: Vec<Time> = cs
            .critical_subtasks()
            .iter()
            .map(|&id| analysis.weight(id))
            .collect();
        let mut sorted = weights.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(weights, sorted);
    }

    #[test]
    fn list_scheduler_variant_also_converges() {
        let (g, schedule, platform) = fig3();
        let cs = CriticalSetAnalysis::compute_with(&g, &schedule, &platform, &ListScheduler::new())
            .unwrap();
        assert!(!cs.is_empty());
        assert_eq!(cs.stored_penalty(), Time::ZERO);
        assert!(cs.iterations() >= 2);
    }

    #[test]
    fn incremental_loop_matches_the_naive_loop_bit_for_bit() {
        let (g, schedule, platform) = fig3();
        let scheduler = BranchBoundScheduler::new();
        let naive =
            CriticalSetAnalysis::compute_naive(&g, &schedule, &platform, &scheduler).unwrap();
        let incremental =
            CriticalSetAnalysis::compute_with(&g, &schedule, &platform, &scheduler).unwrap();
        assert_eq!(incremental, naive);
        // Reusing one cache across the design-time search and the loop (the
        // plan-preparation pattern) must not change the outcome either.
        let mut cache = crate::branch_bound::SearchCache::new();
        let problem = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        let _ = scheduler
            .schedule_with_stats(&problem, &mut cache, None)
            .unwrap();
        let shared = CriticalSetAnalysis::compute_with_cache(
            &g, &schedule, &platform, &scheduler, &mut cache,
        )
        .unwrap();
        assert_eq!(shared, naive);
    }

    #[test]
    fn from_parts_round_trips_every_field() {
        let (g, schedule, platform) = fig3();
        let cs = CriticalSetAnalysis::compute(&g, &schedule, &platform).unwrap();
        let rebuilt = CriticalSetAnalysis::from_parts(
            cs.critical_subtasks().to_vec(),
            cs.stored_load_order().to_vec(),
            cs.stored_penalty(),
            cs.iterations(),
            cs.drhw_subtask_count(),
        );
        assert_eq!(rebuilt, cs);
    }

    #[test]
    fn all_resident_graph_has_empty_critical_set() {
        // A single subtask with a long execution still cannot hide its own
        // load (nothing runs before it), so it must be critical...
        let mut g = SubtaskGraph::new("single");
        g.add_subtask(Subtask::new(
            "only",
            Time::from_millis(50),
            ConfigId::new(0),
        ));
        let schedule =
            InitialSchedule::from_assignment(&g, vec![PeAssignment::Tile(TileSlot::new(0))])
                .unwrap();
        let platform = Platform::virtex_like(1).unwrap();
        let cs = CriticalSetAnalysis::compute(&g, &schedule, &platform).unwrap();
        assert_eq!(cs.critical_subtasks(), &[SubtaskId::new(0)]);
        assert_eq!(cs.critical_fraction(), 1.0);
    }
}
