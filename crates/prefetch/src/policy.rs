//! Names for the five prefetch policies compared in the paper's evaluation.

use serde::{Deserialize, Serialize};

/// One of the five scheduling policies the experiments of §7 compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PolicyKind {
    /// No prefetch at all: configurations are loaded on demand.
    NoPrefetch,
    /// An optimal prefetch schedule computed at design time only; reuse is
    /// impossible because residency is unknown offline.
    DesignTimeOnly,
    /// The run-time list-scheduling heuristic of ref [7] combined with the
    /// reuse and replacement modules.
    RunTime,
    /// The run-time heuristic plus the inter-task optimization of §6.
    RunTimeInterTask,
    /// The hybrid design-time/run-time heuristic of this paper (includes the
    /// inter-task optimization).
    Hybrid,
}

impl PolicyKind {
    /// All policies, in the order the paper introduces them.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::NoPrefetch,
        PolicyKind::DesignTimeOnly,
        PolicyKind::RunTime,
        PolicyKind::RunTimeInterTask,
        PolicyKind::Hybrid,
    ];

    /// The three policies plotted in Figures 6 and 7.
    pub const FIGURE_POLICIES: [PolicyKind; 3] = [
        PolicyKind::RunTime,
        PolicyKind::RunTimeInterTask,
        PolicyKind::Hybrid,
    ];

    /// Whether the policy can exploit configurations left over from previous
    /// task activations.
    pub fn exploits_reuse(self) -> bool {
        matches!(
            self,
            PolicyKind::RunTime | PolicyKind::RunTimeInterTask | PolicyKind::Hybrid
        )
    }

    /// Whether the policy uses the trailing port idle window of the previous
    /// task to prefetch for the next one.
    pub fn uses_inter_task_window(self) -> bool {
        matches!(self, PolicyKind::RunTimeInterTask | PolicyKind::Hybrid)
    }

    /// Parses the stable [`Display`](std::fmt::Display) name of a policy
    /// (`no-prefetch`, `design-time-prefetch`, `run-time`,
    /// `run-time+inter-task`, `hybrid`) — the names used in job specs,
    /// reports and `BENCH_results.json` keys. Returns `None` for anything
    /// else.
    pub fn parse(name: &str) -> Option<PolicyKind> {
        PolicyKind::ALL
            .into_iter()
            .find(|policy| policy.to_string() == name)
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyKind::NoPrefetch => write!(f, "no-prefetch"),
            PolicyKind::DesignTimeOnly => write!(f, "design-time-prefetch"),
            PolicyKind::RunTime => write!(f, "run-time"),
            PolicyKind::RunTimeInterTask => write!(f, "run-time+inter-task"),
            PolicyKind::Hybrid => write!(f, "hybrid"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_policies_are_listed_once() {
        assert_eq!(PolicyKind::ALL.len(), 5);
        let mut unique: Vec<_> = PolicyKind::ALL.to_vec();
        unique.dedup();
        assert_eq!(unique.len(), 5);
    }

    #[test]
    fn reuse_and_window_capabilities_match_the_paper() {
        assert!(!PolicyKind::NoPrefetch.exploits_reuse());
        assert!(!PolicyKind::DesignTimeOnly.exploits_reuse());
        assert!(PolicyKind::RunTime.exploits_reuse());
        assert!(!PolicyKind::RunTime.uses_inter_task_window());
        assert!(PolicyKind::RunTimeInterTask.uses_inter_task_window());
        assert!(PolicyKind::Hybrid.uses_inter_task_window());
    }

    #[test]
    fn parse_round_trips_every_display_name() {
        for policy in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(&policy.to_string()), Some(policy));
        }
        assert_eq!(PolicyKind::parse("turbo"), None);
        assert_eq!(PolicyKind::parse(""), None);
    }

    #[test]
    fn display_names_are_stable() {
        let names: Vec<String> = PolicyKind::ALL.iter().map(|p| p.to_string()).collect();
        assert_eq!(
            names,
            vec![
                "no-prefetch",
                "design-time-prefetch",
                "run-time",
                "run-time+inter-task",
                "hybrid"
            ]
        );
    }
}
