//! The run-time list-scheduling prefetch heuristic (ref [7]).
//!
//! Whenever the reconfiguration port becomes free, the heuristic starts the
//! most critical load among the ones whose tile is already available, where
//! criticality is the ALAP-based weight of [`GraphAnalysis::weight`]. The
//! dominant cost is ordering the loads by weight, giving the `N·log N`
//! complexity the paper quotes; the heuristic produced near-optimal schedules
//! in the authors' earlier work and serves as the "run-time" curve of
//! Figures 6 and 7.
//!
//! [`GraphAnalysis::weight`]: drhw_model::GraphAnalysis::weight

use crate::error::PrefetchError;
use crate::executor::{simulate, LoadStrategy};
use crate::problem::{ExecutionResult, PrefetchProblem};
use crate::scheduler::PrefetchScheduler;

/// Weight-driven list scheduler for configuration loads.
///
/// # Examples
///
/// ```
/// use drhw_model::{ConfigId, InitialSchedule, PeAssignment, Platform, Subtask, SubtaskGraph,
///     TileSlot, Time};
/// use drhw_prefetch::{ListScheduler, PrefetchProblem, PrefetchScheduler};
///
/// # fn main() -> Result<(), drhw_prefetch::PrefetchError> {
/// let mut g = SubtaskGraph::new("fork");
/// let root = g.add_subtask(Subtask::new("root", Time::from_millis(20), ConfigId::new(0)));
/// let left = g.add_subtask(Subtask::new("left", Time::from_millis(10), ConfigId::new(1)));
/// let right = g.add_subtask(Subtask::new("right", Time::from_millis(10), ConfigId::new(2)));
/// g.add_dependency(root, left)?;
/// g.add_dependency(root, right)?;
/// let schedule = InitialSchedule::from_assignment(
///     &g,
///     vec![
///         PeAssignment::Tile(TileSlot::new(0)),
///         PeAssignment::Tile(TileSlot::new(1)),
///         PeAssignment::Tile(TileSlot::new(2)),
///     ],
/// )?;
/// let platform = Platform::virtex_like(3)?;
/// let problem = PrefetchProblem::new(&g, &schedule, &platform)?;
/// let result = ListScheduler::new().schedule(&problem)?;
/// // The two fork loads hide completely behind the 20 ms root execution.
/// assert_eq!(result.penalty(), Time::from_millis(4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ListScheduler;

impl ListScheduler {
    /// Creates the list scheduler.
    pub fn new() -> Self {
        ListScheduler
    }
}

impl PrefetchScheduler for ListScheduler {
    fn name(&self) -> &str {
        "list-prefetch"
    }

    fn schedule(&self, problem: &PrefetchProblem<'_>) -> Result<ExecutionResult, PrefetchError> {
        simulate(problem, LoadStrategy::ListByWeight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OnDemandScheduler;
    use drhw_model::{
        ConfigId, InitialSchedule, PeAssignment, Platform, Subtask, SubtaskGraph, SubtaskId,
        TileSlot, Time,
    };
    use std::collections::BTreeSet;

    /// Wide fork: one root feeding `width` independent children on their own tiles.
    fn fork(width: usize, child_ms: u64) -> (SubtaskGraph, InitialSchedule, Platform) {
        let mut g = SubtaskGraph::new("fork");
        let root = g.add_subtask(Subtask::new(
            "root",
            Time::from_millis(30),
            ConfigId::new(0),
        ));
        let children: Vec<_> = (0..width)
            .map(|i| {
                g.add_subtask(Subtask::new(
                    format!("c{i}"),
                    Time::from_millis(child_ms),
                    ConfigId::new(i + 1),
                ))
            })
            .collect();
        for &c in &children {
            g.add_dependency(root, c).unwrap();
        }
        let mut assignment = vec![PeAssignment::Tile(TileSlot::new(0))];
        assignment.extend((0..width).map(|i| PeAssignment::Tile(TileSlot::new(i + 1))));
        let schedule = InitialSchedule::from_assignment(&g, assignment).unwrap();
        let platform = Platform::virtex_like(width + 1).unwrap();
        (g, schedule, platform)
    }

    #[test]
    fn loads_are_ordered_by_decreasing_weight() {
        let (g, schedule, platform) = fork(3, 10);
        let problem = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        let result = ListScheduler::new().schedule(&problem).unwrap();
        let weights: Vec<Time> = result
            .load_order()
            .iter()
            .map(|&id| problem.weight(id))
            .collect();
        let mut sorted = weights.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(
            weights, sorted,
            "port order must follow decreasing criticality"
        );
        assert_eq!(result.load_order()[0], SubtaskId::new(0));
    }

    #[test]
    fn hides_every_load_that_fits_behind_the_root() {
        // Root runs 30 ms; 3 loads of 4 ms fit easily behind it.
        let (g, schedule, platform) = fork(3, 10);
        let problem = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        let result = ListScheduler::new().schedule(&problem).unwrap();
        assert_eq!(result.penalty(), Time::from_millis(4));
        assert_eq!(result.delayed_subtasks(), vec![SubtaskId::new(0)]);
    }

    #[test]
    fn exposes_loads_when_the_port_saturates() {
        // 10 children but the root only runs 30 ms: 10 loads of 4 ms = 40 ms of
        // port work cannot all hide behind it, so some children stall.
        let (g, schedule, platform) = fork(10, 5);
        let problem = PrefetchProblem::new(&g, &schedule, &platform).unwrap();
        let result = ListScheduler::new().schedule(&problem).unwrap();
        assert!(result.penalty() > Time::from_millis(4));
        let on_demand = OnDemandScheduler::new().schedule(&problem).unwrap();
        assert!(result.penalty() <= on_demand.penalty());
    }

    #[test]
    fn reusing_the_root_removes_the_last_exposed_load() {
        let (g, schedule, platform) = fork(3, 10);
        let resident: BTreeSet<SubtaskId> = [SubtaskId::new(0)].into_iter().collect();
        let problem = PrefetchProblem::with_resident(&g, &schedule, &platform, &resident).unwrap();
        let result = ListScheduler::new().schedule(&problem).unwrap();
        assert_eq!(result.penalty(), Time::ZERO);
        assert_eq!(result.load_count(), 3);
    }
}
