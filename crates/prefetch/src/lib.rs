//! # drhw-prefetch
//!
//! Configuration-prefetch scheduling for dynamically reconfigurable hardware:
//! a reproduction of *"A Hybrid Prefetch Scheduling Heuristic to Minimize at
//! Run-Time the Reconfiguration Overhead of Dynamically Reconfigurable
//! Hardware"* (Resano, Mozos, Catthoor — DATE 2005).
//!
//! The crate implements the full run-time scheduling flow of the paper
//! (Fig. 2): the **reuse module** ([`reusable_subtasks`], [`TileContents`]),
//! the **prefetch module** in all the variants the evaluation compares
//! ([`OnDemandScheduler`], [`DesignTimePrefetch`], [`ListScheduler`],
//! [`BranchBoundScheduler`], and the [`HybridPrefetch`] heuristic built on the
//! Critical Subtask analysis of [`CriticalSetAnalysis`]), and the
//! **replacement module** ([`assign_tiles`]).
//!
//! # The hybrid heuristic in a nutshell
//!
//! ```
//! use std::collections::BTreeSet;
//! use drhw_model::{ConfigId, InitialSchedule, PeAssignment, Platform, Subtask, SubtaskGraph,
//!     TileSlot, Time};
//! use drhw_prefetch::{HybridPrefetch, InterTaskWindow, ListScheduler, PrefetchProblem,
//!     PrefetchScheduler};
//!
//! # fn main() -> Result<(), drhw_prefetch::PrefetchError> {
//! // A small task: decode -> {transform, filter} on three tiles.
//! let mut g = SubtaskGraph::new("demo");
//! let decode = g.add_subtask(Subtask::new("decode", Time::from_millis(16), ConfigId::new(0)));
//! let transform = g.add_subtask(Subtask::new("transform", Time::from_millis(9), ConfigId::new(1)));
//! let filter = g.add_subtask(Subtask::new("filter", Time::from_millis(7), ConfigId::new(2)));
//! g.add_dependency(decode, transform)?;
//! g.add_dependency(decode, filter)?;
//! let schedule = InitialSchedule::from_assignment(
//!     &g,
//!     vec![
//!         PeAssignment::Tile(TileSlot::new(0)),
//!         PeAssignment::Tile(TileSlot::new(1)),
//!         PeAssignment::Tile(TileSlot::new(2)),
//!     ],
//! )?;
//! let platform = Platform::virtex_like(3)?;
//!
//! // Design time: find the critical subtasks and store the load schedule.
//! let hybrid = HybridPrefetch::compute(&g, &schedule, &platform)?;
//! assert_eq!(hybrid.critical().critical_subtasks().len(), 1);
//!
//! // Run time: nothing resident, no idle window from a previous task.
//! let outcome = hybrid.evaluate(&g, &schedule, &platform, &BTreeSet::new(),
//!     InterTaskWindow::empty())?;
//! // Only the initialization phase (one 4 ms load) is exposed.
//! assert_eq!(outcome.penalty(), Time::from_millis(4));
//!
//! // For comparison, the pure run-time heuristic on the same cold start:
//! let problem = PrefetchProblem::new(&g, &schedule, &platform)?;
//! let run_time = ListScheduler::new().schedule(&problem)?;
//! assert_eq!(run_time.penalty(), Time::from_millis(4));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arena;
mod branch_bound;
mod critical;
mod design_time;
mod error;
mod executor;
mod hybrid;
mod inter_task;
mod list_scheduler;
mod mask;
mod on_demand;
mod policy;
mod problem;
mod replacement;
mod reuse;
mod scheduler;

pub use arena::{ExecSummary, HybridSummary, PreparedSchedule, Scratch};
pub use branch_bound::{optimal_penalty, BranchBoundScheduler, SearchCache, SearchStats};
pub use critical::CriticalSetAnalysis;
pub use design_time::DesignTimePrefetch;
pub use error::PrefetchError;
pub use hybrid::{HybridOutcome, HybridPrefetch, HybridRuntimeDecision};
pub use inter_task::{plan_preloads, InterTaskWindow};
pub use list_scheduler::ListScheduler;
pub use mask::{SlotMask, SlotMaskIter};
pub use on_demand::OnDemandScheduler;
pub use policy::PolicyKind;
pub use problem::{ExecutionResult, PrefetchProblem};
pub use replacement::{assign_tiles, assign_tiles_protecting, ReplacementPolicy};
pub use reuse::{apply_schedule_to_contents, reusable_subtasks, TileContents, TileMapping};
pub use scheduler::PrefetchScheduler;
