//! The common interface every prefetch scheduler implements.

use drhw_model::SubtaskId;

use crate::branch_bound::SearchCache;
use crate::error::PrefetchError;
use crate::problem::{ExecutionResult, PrefetchProblem};

/// A strategy for placing the required configuration loads on the shared
/// reconfiguration port.
///
/// Implementors differ in how much computation they spend and how close to the
/// optimum they land:
///
/// * [`OnDemandScheduler`](crate::OnDemandScheduler) — no prefetch at all, the
///   "without prefetch" baseline of the paper;
/// * [`ListScheduler`](crate::ListScheduler) — the run-time heuristic of the
///   authors' earlier work (ref [7]), `N·log N`, near-optimal;
/// * [`BranchBoundScheduler`](crate::BranchBoundScheduler) — exact branch &
///   bound used inside the design-time phase for small graphs.
///
/// The trait is object-safe so simulations can switch policies at run time,
/// and requires `Send + Sync` so schedulers can be shared freely by the
/// parallel batched simulation engine (`SimBatch` in `drhw-sim`), which
/// evaluates many (policy, iteration) pairs concurrently against the same
/// design-time artifacts.
pub trait PrefetchScheduler: Send + Sync {
    /// A short human-readable name used in experiment reports.
    fn name(&self) -> &str;

    /// Produces a timed schedule for the given problem.
    ///
    /// # Errors
    ///
    /// Returns an error if the problem's model is inconsistent (the schedulers
    /// themselves never produce deadlocking orders).
    fn schedule(&self, problem: &PrefetchProblem<'_>) -> Result<ExecutionResult, PrefetchError>;

    /// Produces a timed schedule, optionally assisted by a reusable
    /// [`SearchCache`] and a warm-start order carried over from a related
    /// search (e.g. the previous round of the critical-set loop, filtered to
    /// this problem's loads).
    ///
    /// The hints may only change how fast the answer is found, never the
    /// answer: implementations must return results bit-identical to
    /// [`schedule`](Self::schedule). The default ignores both hints and
    /// defers to `schedule`; schedulers whose searches can exploit them
    /// (notably [`BranchBoundScheduler`](crate::BranchBoundScheduler))
    /// override it.
    ///
    /// # Errors
    ///
    /// Returns an error if the problem's model is inconsistent.
    fn schedule_assisted(
        &self,
        problem: &PrefetchProblem<'_>,
        cache: &mut SearchCache,
        warm_order: Option<&[SubtaskId]>,
    ) -> Result<ExecutionResult, PrefetchError> {
        let _ = (cache, warm_order);
        self.schedule(problem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BranchBoundScheduler, ListScheduler, OnDemandScheduler};

    #[test]
    fn schedulers_are_object_safe_and_named() {
        let schedulers: Vec<Box<dyn PrefetchScheduler>> = vec![
            Box::new(OnDemandScheduler::new()),
            Box::new(ListScheduler::new()),
            Box::new(BranchBoundScheduler::new()),
        ];
        let names: Vec<&str> = schedulers.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec!["on-demand", "list-prefetch", "branch-and-bound"]
        );
    }
}
