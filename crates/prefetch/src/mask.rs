//! Fixed-width bitmask sets over subtask and slot indices.
//!
//! The per-activation kernels in [`arena`](crate::arena) track residency,
//! needs-load and pending-load sets for graphs whose size is bounded by the
//! platform (a handful to a few dozen subtasks). Storing those sets as one
//! `u64` word each turns the hot-loop set operations — membership, insert,
//! remove, union, iteration — into single machine instructions, and lets the
//! timing loop test "are all dependencies timed?" with one `AND` against a
//! precomputed dependency mask instead of chasing per-subtask heap data.
//!
//! The price is the width invariant: a [`SlotMask`] holds indices `0..64`
//! only. The invariant is validated once, at preparation time —
//! [`PreparedSchedule::new`](crate::PreparedSchedule::new) rejects larger
//! graphs with [`PrefetchError::ExceedsMaskWidth`](crate::PrefetchError) and
//! the simulation layer rejects wider platforms before any worker starts —
//! so the kernels themselves never re-check it.

use std::fmt;

/// A set of indices in `0..`[`SlotMask::CAPACITY`] stored as one `u64`.
///
/// Semantically a `HashSet<usize>` restricted to small indices; every
/// operation is branch-free word arithmetic. Iteration yields indices in
/// ascending order (via trailing-zeros extraction), which is exactly the
/// "ascending subtask id" order the classic kernels produced — the property
/// the bit-for-bit parity of the refactor rests on.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct SlotMask(u64);

impl SlotMask {
    /// Maximum number of distinct indices a mask can hold (`0..64`).
    pub const CAPACITY: usize = u64::BITS as usize;

    /// The empty set.
    pub const EMPTY: SlotMask = SlotMask(0);

    /// Whether `count` indices fit the mask width — the invariant the
    /// preparation-time validators enforce before any kernel runs.
    #[inline]
    pub const fn fits(count: usize) -> bool {
        count <= Self::CAPACITY
    }

    /// The empty set (`const`-friendly alias of [`SlotMask::EMPTY`]).
    #[inline]
    pub const fn empty() -> Self {
        Self::EMPTY
    }

    /// The set `{0, 1, …, count-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds [`SlotMask::CAPACITY`].
    #[inline]
    pub fn full(count: usize) -> Self {
        assert!(Self::fits(count), "{count} indices exceed the mask width");
        if count == Self::CAPACITY {
            SlotMask(u64::MAX)
        } else {
            SlotMask((1u64 << count) - 1)
        }
    }

    /// A mask over the raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        SlotMask(bits)
    }

    /// The raw bit pattern.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Adds `index` to the set. Debug-asserts the width invariant; callers
    /// are behind the preparation-time validation.
    #[inline]
    pub fn insert(&mut self, index: usize) {
        debug_assert!(index < Self::CAPACITY, "index {index} exceeds mask width");
        self.0 |= 1u64 << index;
    }

    /// Removes `index` from the set.
    #[inline]
    pub fn remove(&mut self, index: usize) {
        debug_assert!(index < Self::CAPACITY, "index {index} exceeds mask width");
        self.0 &= !(1u64 << index);
    }

    /// Whether `index` is in the set.
    #[inline]
    pub fn contains(self, index: usize) -> bool {
        debug_assert!(index < Self::CAPACITY, "index {index} exceeds mask width");
        self.0 & (1u64 << index) != 0
    }

    /// Number of indices in the set (popcount).
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Empties the set in place.
    #[inline]
    pub fn clear(&mut self) {
        self.0 = 0;
    }

    /// The union of two sets.
    #[inline]
    pub const fn union(self, other: SlotMask) -> SlotMask {
        SlotMask(self.0 | other.0)
    }

    /// The intersection of two sets.
    #[inline]
    pub const fn intersection(self, other: SlotMask) -> SlotMask {
        SlotMask(self.0 & other.0)
    }

    /// The indices in `self` but not in `other`.
    #[inline]
    pub const fn difference(self, other: SlotMask) -> SlotMask {
        SlotMask(self.0 & !other.0)
    }

    /// Iterates the indices in ascending order.
    #[inline]
    pub fn iter(self) -> SlotMaskIter {
        SlotMaskIter(self.0)
    }
}

impl FromIterator<usize> for SlotMask {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut mask = SlotMask::EMPTY;
        for index in iter {
            mask.insert(index);
        }
        mask
    }
}

impl Extend<usize> for SlotMask {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for index in iter {
            self.insert(index);
        }
    }
}

impl IntoIterator for SlotMask {
    type Item = usize;
    type IntoIter = SlotMaskIter;

    fn into_iter(self) -> SlotMaskIter {
        self.iter()
    }
}

impl fmt::Debug for SlotMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Ascending-order iterator over the indices of a [`SlotMask`]
/// (trailing-zeros extraction, one bit cleared per step).
#[derive(Debug, Clone)]
pub struct SlotMaskIter(u64);

impl Iterator for SlotMaskIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let index = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(index)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for SlotMaskIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_set_semantics() {
        let mut m = SlotMask::empty();
        assert!(m.is_empty());
        m.insert(0);
        m.insert(63);
        m.insert(17);
        assert_eq!(m.len(), 3);
        assert!(m.contains(0) && m.contains(17) && m.contains(63));
        assert!(!m.contains(1));
        m.remove(17);
        assert!(!m.contains(17));
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 63]);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn iteration_is_ascending() {
        let m: SlotMask = [5usize, 1, 40, 2, 63].into_iter().collect();
        let order: Vec<usize> = m.iter().collect();
        assert_eq!(order, vec![1, 2, 5, 40, 63]);
        assert_eq!(m.iter().len(), 5);
    }

    #[test]
    fn set_algebra() {
        let a: SlotMask = [0usize, 1, 2].into_iter().collect();
        let b: SlotMask = [2usize, 3].into_iter().collect();
        assert_eq!(a.union(b).iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(a.intersection(b).iter().collect::<Vec<_>>(), vec![2]);
        assert_eq!(a.difference(b).iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn full_and_fits_cover_the_boundaries() {
        assert!(SlotMask::fits(0));
        assert!(SlotMask::fits(64));
        assert!(!SlotMask::fits(65));
        assert_eq!(SlotMask::full(0), SlotMask::EMPTY);
        assert_eq!(SlotMask::full(64).len(), 64);
        assert_eq!(SlotMask::full(3).iter().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "exceed the mask width")]
    fn full_rejects_oversized_counts() {
        let _ = SlotMask::full(65);
    }

    #[test]
    fn debug_formats_as_a_set() {
        let m: SlotMask = [1usize, 4].into_iter().collect();
        assert_eq!(format!("{m:?}"), "{1, 4}");
    }

    #[test]
    fn bits_round_trip() {
        let m: SlotMask = [0usize, 8, 63].into_iter().collect();
        assert_eq!(SlotMask::from_bits(m.bits()), m);
        let mut e = SlotMask::EMPTY;
        e.extend([3usize, 9]);
        assert_eq!(e.len(), 2);
    }
}
