//! Pluggable arrival processes for the open-loop driver.
//!
//! A [`TrafficGenerator`] yields absolute arrival times on the virtual clock
//! (nondecreasing integer microseconds); the driver consumes arrivals until
//! the scenario horizon. All randomness comes from [`SplitMix64`] streams
//! derived from the scenario's master seed, so a generator's arrival
//! sequence depends only on `(seed, generator)` — never on the workload or
//! policy it is paired with, which is what makes scenario cells *paired*
//! (every cell of one generator sees the identical arrival stream) and
//! scenario outputs byte-identical at any engine worker count.

/// A deterministic SplitMix64 stream — the same generator the simulation
/// stack derives its per-iteration randomness from.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// One SplitMix64 output step.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in the half-open unit interval `(0, 1]` (never zero,
    /// so `ln` is always finite).
    pub fn next_unit(&mut self) -> f64 {
        (((self.next_u64() >> 11) + 1) as f64) * (1.0 / 9_007_199_254_740_992.0)
    }

    /// An exponential inter-arrival gap in microseconds for a process of
    /// `rate_per_sec` events per second (at least 1 µs, so arrival times
    /// strictly increase).
    pub fn next_exp_gap_us(&mut self, rate_per_sec: f64) -> u64 {
        let gap = -self.next_unit().ln() * 1e6 / rate_per_sec;
        (gap.round() as u64).max(1)
    }

    /// An exponential duration in microseconds with the given mean.
    pub fn next_exp_mean_us(&mut self, mean_us: f64) -> u64 {
        let duration = -self.next_unit().ln() * mean_us;
        (duration.round() as u64).max(1)
    }
}

/// An arrival process on the virtual clock.
pub trait TrafficGenerator {
    /// The next absolute arrival time in microseconds, nondecreasing across
    /// calls; `None` when the process is exhausted (only trace replay ends).
    fn next_arrival_us(&mut self) -> Option<u64>;
}

/// Poisson arrivals: i.i.d. exponential inter-arrival gaps at a fixed rate.
#[derive(Debug, Clone)]
pub struct PoissonGenerator {
    rng: SplitMix64,
    rate_per_sec: f64,
    clock_us: u64,
}

impl PoissonGenerator {
    /// A Poisson process of `rate_per_sec` arrivals per second.
    pub fn new(seed: u64, rate_per_sec: f64) -> Self {
        PoissonGenerator {
            rng: SplitMix64::new(seed),
            rate_per_sec,
            clock_us: 0,
        }
    }
}

impl TrafficGenerator for PoissonGenerator {
    fn next_arrival_us(&mut self) -> Option<u64> {
        self.clock_us = self
            .clock_us
            .saturating_add(self.rng.next_exp_gap_us(self.rate_per_sec));
        Some(self.clock_us)
    }
}

/// Bursty on-off arrivals (a two-state MMPP): the process alternates
/// between an *on* phase emitting Poisson arrivals at `rate_on_per_sec` and
/// an *off* phase at `rate_off_per_sec` (which may be zero: silence), with
/// exponentially distributed phase durations. Starts in the on phase.
#[derive(Debug, Clone)]
pub struct OnOffGenerator {
    rng: SplitMix64,
    rate_on_per_sec: f64,
    rate_off_per_sec: f64,
    mean_on_us: f64,
    mean_off_us: f64,
    clock_us: u64,
    phase_end_us: u64,
    on: bool,
}

impl OnOffGenerator {
    /// An on-off process. `rate_on_per_sec` must be positive (the off rate
    /// may be zero); phase means are in milliseconds.
    pub fn new(
        seed: u64,
        rate_on_per_sec: f64,
        rate_off_per_sec: f64,
        mean_on_ms: f64,
        mean_off_ms: f64,
    ) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mean_on_us = mean_on_ms * 1e3;
        let phase_end_us = rng.next_exp_mean_us(mean_on_us);
        OnOffGenerator {
            rng,
            rate_on_per_sec,
            rate_off_per_sec,
            mean_on_us,
            mean_off_us: mean_off_ms * 1e3,
            clock_us: 0,
            phase_end_us,
            on: true,
        }
    }
}

impl TrafficGenerator for OnOffGenerator {
    fn next_arrival_us(&mut self) -> Option<u64> {
        loop {
            let rate = if self.on {
                self.rate_on_per_sec
            } else {
                self.rate_off_per_sec
            };
            if rate > 0.0 {
                let candidate = self.clock_us.saturating_add(self.rng.next_exp_gap_us(rate));
                if candidate <= self.phase_end_us {
                    self.clock_us = candidate;
                    return Some(candidate);
                }
                // The draw fell past the phase boundary: discard it and
                // restart at the boundary — distributionally identical for
                // an exponential (memorylessness) and deterministic.
            }
            self.clock_us = self.phase_end_us;
            self.on = !self.on;
            let mean = if self.on {
                self.mean_on_us
            } else {
                self.mean_off_us
            };
            self.phase_end_us = self
                .clock_us
                .saturating_add(self.rng.next_exp_mean_us(mean));
        }
    }
}

/// Replays a recorded arrival trace verbatim. Consumes no randomness: a
/// replayed cell sees exactly the arrivals of the recorded run.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    arrivals: Vec<u64>,
    next: usize,
}

impl TraceGenerator {
    /// A generator replaying `arrivals` (absolute microseconds, must be
    /// nondecreasing — validated by the trace loader).
    pub fn from_arrivals(arrivals: Vec<u64>) -> Self {
        TraceGenerator { arrivals, next: 0 }
    }
}

impl TrafficGenerator for TraceGenerator {
    fn next_arrival_us(&mut self) -> Option<u64> {
        let arrival = self.arrivals.get(self.next).copied();
        self.next += arrival.is_some() as usize;
        arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_until(generator: &mut dyn TrafficGenerator, horizon_us: u64) -> Vec<u64> {
        let mut arrivals = Vec::new();
        while let Some(t) = generator.next_arrival_us() {
            if t >= horizon_us {
                break;
            }
            arrivals.push(t);
        }
        arrivals
    }

    #[test]
    fn poisson_is_deterministic_per_seed_and_strictly_increasing() {
        let a = collect_until(&mut PoissonGenerator::new(7, 100.0), 5_000_000);
        let b = collect_until(&mut PoissonGenerator::new(7, 100.0), 5_000_000);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        // ~100/s over 5 s: loose 3-sigma-ish band.
        assert!(a.len() > 350 && a.len() < 650, "got {}", a.len());
        let c = collect_until(&mut PoissonGenerator::new(8, 100.0), 5_000_000);
        assert_ne!(a, c);
    }

    #[test]
    fn onoff_rate_zero_off_phase_produces_gaps() {
        let mut generator = OnOffGenerator::new(11, 500.0, 0.0, 200.0, 200.0);
        let arrivals = collect_until(&mut generator, 10_000_000);
        assert!(!arrivals.is_empty());
        assert!(arrivals.windows(2).all(|w| w[0] < w[1]));
        // With equal on/off means the achieved rate is roughly half the on
        // rate; mainly we care that silence gaps exist (an off phase).
        let max_gap = arrivals.windows(2).map(|w| w[1] - w[0]).max().unwrap();
        assert!(max_gap > 50_000, "expected an off-phase gap, max {max_gap}");
    }

    #[test]
    fn onoff_is_deterministic_per_seed() {
        let mut a = OnOffGenerator::new(3, 120.0, 5.0, 400.0, 600.0);
        let mut b = OnOffGenerator::new(3, 120.0, 5.0, 400.0, 600.0);
        assert_eq!(
            collect_until(&mut a, 3_000_000),
            collect_until(&mut b, 3_000_000)
        );
    }

    #[test]
    fn trace_replays_verbatim_and_ends() {
        let mut generator = TraceGenerator::from_arrivals(vec![5, 5, 9]);
        assert_eq!(generator.next_arrival_us(), Some(5));
        assert_eq!(generator.next_arrival_us(), Some(5));
        assert_eq!(generator.next_arrival_us(), Some(9));
        assert_eq!(generator.next_arrival_us(), None);
        assert_eq!(generator.next_arrival_us(), None);
    }

    #[test]
    fn unit_draws_stay_in_the_half_open_interval() {
        let mut rng = SplitMix64::new(0);
        for _ in 0..10_000 {
            let u = rng.next_unit();
            assert!(u > 0.0 && u <= 1.0);
        }
    }
}
