//! Wire formats of the traffic subsystem: the `TRAFFIC_results.jsonl`
//! stream (header, cell and `traffic_event` lines), recorded arrival traces
//! and the `TRAFFIC_summary.json` document (bench schema v8).
//!
//! Every line is compact single-line JSON rendered through
//! [`drhw_engine::json::JsonValue`] with fixed key order — the byte-level
//! schema `tests/schema_snapshot.rs` pins. Floats use Rust's shortest
//! round-trip formatting, so identical runs produce identical bytes.

use std::io::Write;

use drhw_engine::check_object_fields;
use drhw_engine::json::{parse, JsonValue};
use drhw_prefetch::PolicyKind;

use crate::driver::{CellReport, ScenarioOutcome};
use crate::latency::Histogram;
use crate::scenario::TrafficScenario;
use crate::TrafficError;

/// Schema version of every traffic wire object.
pub const TRAFFIC_SCHEMA_VERSION: u64 = 8;

/// The wire fields of a `trace_arrival` line.
pub const TRACE_ARRIVAL_FIELDS: [&str; 3] = ["type", "job", "t_us"];

fn io_error(e: std::io::Error) -> TrafficError {
    TrafficError::Io {
        path: "<event sink>".to_string(),
        message: e.to_string(),
    }
}

fn write_line(sink: &mut dyn Write, value: &JsonValue) -> Result<(), TrafficError> {
    let mut line = value.to_json();
    line.push('\n');
    sink.write_all(line.as_bytes()).map_err(io_error)
}

/// Writes the `traffic_scenario` header line opening a results log.
pub fn write_scenario_header(
    sink: &mut dyn Write,
    scenario: &TrafficScenario,
    cells: usize,
) -> Result<(), TrafficError> {
    write_line(
        sink,
        &JsonValue::Object(vec![
            ("type".into(), JsonValue::String("traffic_scenario".into())),
            (
                "scenario".into(),
                JsonValue::String(scenario.scenario.clone()),
            ),
            ("seed".into(), JsonValue::UInt(scenario.seed)),
            ("slots".into(), JsonValue::UInt(scenario.slots as u64)),
            ("duration_ms".into(), JsonValue::UInt(scenario.duration_ms)),
            ("warmup_ms".into(), JsonValue::UInt(scenario.warmup_ms)),
            (
                "iterations".into(),
                JsonValue::UInt(scenario.iterations as u64),
            ),
            ("cells".into(), JsonValue::UInt(cells as u64)),
            (
                "schema_version".into(),
                JsonValue::UInt(TRAFFIC_SCHEMA_VERSION),
            ),
        ]),
    )
}

/// Writes the `traffic_cell` line introducing one cell's event stream.
pub fn write_cell_line(
    sink: &mut dyn Write,
    cell: usize,
    generator: &str,
    workload: &str,
    policy: PolicyKind,
    slots: usize,
) -> Result<(), TrafficError> {
    write_line(
        sink,
        &JsonValue::Object(vec![
            ("type".into(), JsonValue::String("traffic_cell".into())),
            ("cell".into(), JsonValue::UInt(cell as u64)),
            ("generator".into(), JsonValue::String(generator.into())),
            ("workload".into(), JsonValue::String(workload.into())),
            ("policy".into(), JsonValue::String(policy.to_string())),
            ("slots".into(), JsonValue::UInt(slots as u64)),
        ]),
    )
}

fn event_base(cell: usize, event: &str, job: u64, t_us: u64) -> Vec<(String, JsonValue)> {
    vec![
        ("type".into(), JsonValue::String("traffic_event".into())),
        ("cell".into(), JsonValue::UInt(cell as u64)),
        ("event".into(), JsonValue::String(event.into())),
        ("job".into(), JsonValue::UInt(job)),
        ("t_us".into(), JsonValue::UInt(t_us)),
    ]
}

/// Writes an `arrival` event.
pub fn write_event_arrival(
    sink: &mut dyn Write,
    cell: usize,
    job: u64,
    t_us: u64,
) -> Result<(), TrafficError> {
    write_line(
        sink,
        &JsonValue::Object(event_base(cell, "arrival", job, t_us)),
    )
}

/// Writes a `drop` event (bounded-queue overflow; the job never runs).
pub fn write_event_drop(
    sink: &mut dyn Write,
    cell: usize,
    job: u64,
    t_us: u64,
) -> Result<(), TrafficError> {
    write_line(
        sink,
        &JsonValue::Object(event_base(cell, "drop", job, t_us)),
    )
}

/// Writes a `start` event (the job left the queue for a slot).
pub fn write_event_start(
    sink: &mut dyn Write,
    cell: usize,
    job: u64,
    t_us: u64,
    slot: usize,
    wait_us: u64,
) -> Result<(), TrafficError> {
    let mut entries = event_base(cell, "start", job, t_us);
    entries.push(("slot".into(), JsonValue::UInt(slot as u64)));
    entries.push(("wait_us".into(), JsonValue::UInt(wait_us)));
    write_line(sink, &JsonValue::Object(entries))
}

/// Writes a `completion` event.
pub fn write_event_completion(
    sink: &mut dyn Write,
    cell: usize,
    job: u64,
    t_us: u64,
    slot: usize,
    service_us: u64,
    sojourn_us: u64,
) -> Result<(), TrafficError> {
    let mut entries = event_base(cell, "completion", job, t_us);
    entries.push(("slot".into(), JsonValue::UInt(slot as u64)));
    entries.push(("service_us".into(), JsonValue::UInt(service_us)));
    entries.push(("sojourn_us".into(), JsonValue::UInt(sojourn_us)));
    write_line(sink, &JsonValue::Object(entries))
}

/// Renders an arrival stream as a JSONL trace (one `trace_arrival` line per
/// job) — the file a `trace` generator replays.
pub fn render_trace(arrivals: &[u64]) -> String {
    let mut out = String::new();
    for (job, &t_us) in arrivals.iter().enumerate() {
        let line = JsonValue::Object(vec![
            ("type".into(), JsonValue::String("trace_arrival".into())),
            ("job".into(), JsonValue::UInt(job as u64)),
            ("t_us".into(), JsonValue::UInt(t_us)),
        ]);
        out.push_str(&line.to_json());
        out.push('\n');
    }
    out
}

/// Parses a JSONL arrival trace — strictly: every non-empty line must be a
/// `trace_arrival` object with exactly the pinned fields, and arrival times
/// must be nondecreasing. `path` names the file in error messages.
///
/// # Errors
///
/// Returns [`TrafficError::Trace`] describing the first offending line.
pub fn parse_trace(text: &str, path: &str) -> Result<Vec<u64>, TrafficError> {
    let bad = |line: usize, message: String| TrafficError::Trace {
        path: path.to_string(),
        line,
        message,
    };
    let mut arrivals = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let number = index + 1;
        if line.trim().is_empty() {
            continue;
        }
        let value = parse(line).map_err(|e| bad(number, format!("malformed JSON: {e}")))?;
        let entries = value
            .entries()
            .ok_or_else(|| bad(number, "expected a JSON object".into()))?;
        check_object_fields(entries, "trace arrival", &TRACE_ARRIVAL_FIELDS, &[])
            .map_err(|e| bad(number, e.to_string()))?;
        match value.get("type").and_then(JsonValue::as_str) {
            Some("trace_arrival") => {}
            other => {
                return Err(bad(
                    number,
                    format!("expected type \"trace_arrival\", got {other:?}"),
                ))
            }
        }
        let t_us = value
            .get("t_us")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| bad(number, "t_us must be an unsigned integer".into()))?;
        if let Some(&last) = arrivals.last() {
            if t_us < last {
                return Err(bad(
                    number,
                    format!("arrival times must be nondecreasing ({t_us} after {last})"),
                ));
            }
        }
        arrivals.push(t_us);
    }
    Ok(arrivals)
}

/// The summary block of one latency histogram.
fn latency_json(histogram: &Histogram) -> JsonValue {
    JsonValue::Object(vec![
        ("samples".into(), JsonValue::UInt(histogram.count())),
        ("p50_ms".into(), JsonValue::Float(histogram.p50_ms())),
        ("p99_ms".into(), JsonValue::Float(histogram.p99_ms())),
        ("p999_ms".into(), JsonValue::Float(histogram.p999_ms())),
        ("mean_ms".into(), JsonValue::Float(histogram.mean_ms())),
        ("max_ms".into(), JsonValue::Float(histogram.max_ms())),
    ])
}

/// The summary block of one cell.
fn cell_json(report: &CellReport) -> JsonValue {
    JsonValue::Object(vec![
        ("cell".into(), JsonValue::UInt(report.cell as u64)),
        (
            "generator".into(),
            JsonValue::String(report.generator.clone()),
        ),
        (
            "workload".into(),
            JsonValue::String(report.workload.clone()),
        ),
        (
            "policy".into(),
            JsonValue::String(report.policy.to_string()),
        ),
        ("arrived".into(), JsonValue::UInt(report.arrived)),
        ("measured".into(), JsonValue::UInt(report.measured)),
        ("dropped".into(), JsonValue::UInt(report.dropped)),
        (
            "dropped_measured".into(),
            JsonValue::UInt(report.dropped_measured),
        ),
        (
            "completed_in_window".into(),
            JsonValue::UInt(report.completed_in_window),
        ),
        (
            "offered_per_sec".into(),
            JsonValue::Float(report.offered_per_sec()),
        ),
        (
            "achieved_per_sec".into(),
            JsonValue::Float(report.achieved_per_sec()),
        ),
        ("wait".into(), latency_json(&report.wait)),
        ("service".into(), latency_json(&report.service)),
        ("sojourn".into(), latency_json(&report.sojourn)),
        (
            "utilization".into(),
            JsonValue::Object(vec![
                (
                    "per_slot".into(),
                    JsonValue::Array(
                        report
                            .utilization_per_slot()
                            .into_iter()
                            .map(JsonValue::Float)
                            .collect(),
                    ),
                ),
                ("mean".into(), JsonValue::Float(report.utilization_mean())),
            ]),
        ),
        (
            "overhead_percent".into(),
            JsonValue::Float(report.overhead_percent),
        ),
    ])
}

/// Renders `TRAFFIC_summary.json`: the scenario echo plus every cell's
/// aggregate block, as one compact line (newline-terminated).
pub fn render_summary(outcome: &ScenarioOutcome) -> String {
    let scenario = &outcome.scenario;
    let value = JsonValue::Object(vec![
        ("type".into(), JsonValue::String("traffic_summary".into())),
        (
            "scenario".into(),
            JsonValue::String(scenario.scenario.clone()),
        ),
        ("seed".into(), JsonValue::UInt(scenario.seed)),
        ("slots".into(), JsonValue::UInt(scenario.slots as u64)),
        ("duration_ms".into(), JsonValue::UInt(scenario.duration_ms)),
        ("warmup_ms".into(), JsonValue::UInt(scenario.warmup_ms)),
        (
            "iterations".into(),
            JsonValue::UInt(scenario.iterations as u64),
        ),
        (
            "cells".into(),
            JsonValue::Array(outcome.cells.iter().map(cell_json).collect()),
        ),
        (
            "schema_version".into(),
            JsonValue::UInt(TRAFFIC_SCHEMA_VERSION),
        ),
    ]);
    let mut out = value.to_json();
    out.push('\n');
    out
}

/// Renders the stdout table of a scenario run: one row per cell.
pub fn render_table(outcome: &ScenarioOutcome) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<4} {:<12} {:<14} {:<22} {:>9} {:>9} {:>9} {:>9} {:>9} {:>6} {:>7}\n",
        "cell",
        "generator",
        "workload",
        "policy",
        "offered/s",
        "achiev/s",
        "p50 ms",
        "p99 ms",
        "p999 ms",
        "util",
        "drops"
    ));
    for cell in &outcome.cells {
        out.push_str(&format!(
            "{:<4} {:<12} {:<14} {:<22} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>6.3} {:>7}\n",
            cell.cell,
            cell.generator,
            cell.workload,
            cell.policy.to_string(),
            cell.offered_per_sec(),
            cell.achieved_per_sec(),
            cell.sojourn.p50_ms(),
            cell.sojourn.p99_ms(),
            cell.sojourn.p999_ms(),
            cell.utilization_mean(),
            cell.dropped,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_round_trips() {
        let arrivals = vec![5, 5, 1000, 2_000_000];
        let text = render_trace(&arrivals);
        assert_eq!(parse_trace(&text, "t.jsonl").unwrap(), arrivals);
    }

    #[test]
    fn trace_rejects_decreasing_times() {
        let text = "{\"type\":\"trace_arrival\",\"job\":0,\"t_us\":10}\n\
                    {\"type\":\"trace_arrival\",\"job\":1,\"t_us\":9}\n";
        let err = parse_trace(text, "t.jsonl").unwrap_err();
        assert!(err.to_string().contains("nondecreasing"), "{err}");
    }

    #[test]
    fn trace_rejects_unknown_fields() {
        let text = "{\"type\":\"trace_arrival\",\"job\":0,\"t_us\":10,\"extra\":1}\n";
        let err = parse_trace(text, "t.jsonl").unwrap_err();
        assert!(err.to_string().contains("extra"), "{err}");
    }

    #[test]
    fn trace_skips_blank_lines() {
        let text = "\n{\"type\":\"trace_arrival\",\"job\":0,\"t_us\":10}\n\n";
        assert_eq!(parse_trace(text, "t.jsonl").unwrap(), vec![10]);
    }

    #[test]
    fn event_lines_have_pinned_key_order() {
        let mut sink = Vec::new();
        write_event_start(&mut sink, 2, 7, 1000, 1, 250).unwrap();
        write_event_completion(&mut sink, 2, 7, 2000, 1, 750, 1250).unwrap();
        let text = String::from_utf8(sink).unwrap();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "{\"type\":\"traffic_event\",\"cell\":2,\"event\":\"start\",\"job\":7,\
             \"t_us\":1000,\"slot\":1,\"wait_us\":250}"
        );
        assert_eq!(
            lines.next().unwrap(),
            "{\"type\":\"traffic_event\",\"cell\":2,\"event\":\"completion\",\"job\":7,\
             \"t_us\":2000,\"slot\":1,\"service_us\":750,\"sojourn_us\":1250}"
        );
    }
}
