//! # drhw-traffic
//!
//! The open-loop traffic subsystem: a deterministic simulated-clock driver
//! where jobs *arrive* over virtual time from pluggable generators
//! ([`PoissonGenerator`], bursty [`OnOffGenerator`], [`TraceGenerator`]
//! replay), queue FIFO against a configurable number of service slots whose
//! service times are real per-iteration engine measurements, and stream
//! `traffic_event` records in virtual-time order.
//!
//! Where the rest of the workspace answers the paper's question — how much
//! reconfiguration overhead does each prefetch policy leave? — this crate
//! answers the production one: what do those per-task costs *do to tail
//! latency and utilization when tasks arrive under load*? Reports pair the
//! paper's overhead metric with log-bucketed p50/p99/p999 latencies
//! ([`Histogram`]), per-slot utilization and offered-vs-achieved
//! throughput.
//!
//! Everything is derived SplitMix64-style from the scenario's master seed
//! on an integer-microsecond virtual clock, so a scenario's
//! `TRAFFIC_results.jsonl` and summary are **byte-identical at any engine
//! worker count** (see [`driver`] for the exact tie-break rules).
//!
//! ```
//! use drhw_engine::Engine;
//! use drhw_traffic::{run_scenario, TrafficScenario};
//!
//! # fn main() -> Result<(), drhw_traffic::TrafficError> {
//! let scenario = TrafficScenario::from_json_text(
//!     r#"{
//!         "scenario": "doc",
//!         "duration_ms": 2000,
//!         "iterations": 16,
//!         "generators": [{"name": "g", "kind": "poisson", "rate_per_sec": 5}],
//!         "workloads": ["multimedia"],
//!         "policies": ["hybrid"]
//!     }"#,
//! )?;
//! let engine = Engine::builder().threads(1).build();
//! let mut events = Vec::new();
//! let outcome = run_scenario(&engine, &scenario, std::path::Path::new("."), &mut events)?;
//! assert_eq!(outcome.cells.len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod driver;
pub mod generator;
pub mod latency;
pub mod record;
pub mod scenario;
mod session;

use std::fmt;

pub use driver::{run_scenario, CellReport, ScenarioOutcome, ServicePool};
pub use generator::{
    OnOffGenerator, PoissonGenerator, SplitMix64, TraceGenerator, TrafficGenerator,
};
pub use latency::Histogram;
pub use record::{
    parse_trace, render_summary, render_table, render_trace, TRACE_ARRIVAL_FIELDS,
    TRAFFIC_SCHEMA_VERSION,
};
pub use scenario::{
    GeneratorKind, GeneratorSpec, TrafficScenario, DEFAULT_ITERATIONS, DEFAULT_SEED, DEFAULT_SLOTS,
    GENERATOR_FIELDS, SCENARIO_FIELDS,
};
pub use session::{run_session, SessionOutcome, RESULTS_FILE, SUMMARY_FILE};

/// Why a traffic run failed.
#[derive(Debug)]
pub enum TrafficError {
    /// The scenario spec is invalid.
    Scenario {
        /// The offending field.
        field: &'static str,
        /// What is wrong with it.
        reason: String,
    },
    /// An engine-side failure (unknown workload, plan preparation, strict
    /// JSON field checking, ...).
    Engine(drhw_engine::EngineError),
    /// A filesystem failure.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error.
        message: String,
    },
    /// A malformed arrival-trace file.
    Trace {
        /// The trace file.
        path: String,
        /// The offending line (1-based).
        line: usize,
        /// What is wrong with it.
        message: String,
    },
}

impl fmt::Display for TrafficError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficError::Scenario { field, reason } => {
                write!(f, "invalid traffic scenario: {field}: {reason}")
            }
            TrafficError::Engine(e) => write!(f, "{e}"),
            TrafficError::Io { path, message } => write!(f, "{path}: {message}"),
            TrafficError::Trace {
                path,
                line,
                message,
            } => write!(f, "{path}:{line}: {message}"),
        }
    }
}

impl std::error::Error for TrafficError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrafficError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<drhw_engine::EngineError> for TrafficError {
    fn from(e: drhw_engine::EngineError) -> Self {
        TrafficError::Engine(e)
    }
}
