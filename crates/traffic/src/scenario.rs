//! Traffic scenarios: the declarative spec a `traffic` run executes.
//!
//! A [`TrafficScenario`] binds generators × workloads × policies to a
//! virtual-clock horizon: every (generator, workload, policy) triple becomes
//! one *cell*, an independent queueing run sharing the generator's arrival
//! stream (arrivals depend only on `(seed, generator)`, so cells of one
//! generator are paired across workloads and policies). The grammar is
//! hand-rolled JSON parsed strictly, like `ExperimentSpec`: unknown or
//! duplicate fields are rejected with the nearest valid name.

use drhw_engine::json::JsonValue;
use drhw_engine::{check_object_fields, JobSpec};
use drhw_prefetch::PolicyKind;

use crate::generator::{OnOffGenerator, PoissonGenerator, TraceGenerator, TrafficGenerator};
use crate::TrafficError;

/// Default master seed of a scenario.
pub const DEFAULT_SEED: u64 = 2005;
/// Default number of service slots.
pub const DEFAULT_SLOTS: usize = 1;
/// Default size of the per-(workload, policy) service-time pool, i.e. the
/// `iterations` of the measurement job service times are sampled from.
pub const DEFAULT_ITERATIONS: usize = 200;

/// The wire fields of a scenario object.
pub const SCENARIO_FIELDS: [&str; 11] = [
    "scenario",
    "seed",
    "slots",
    "duration_ms",
    "warmup_ms",
    "iterations",
    "queue_capacity",
    "tiles",
    "generators",
    "workloads",
    "policies",
];

/// The wire fields of a generator object.
pub const GENERATOR_FIELDS: [&str; 8] = [
    "name",
    "kind",
    "rate_per_sec",
    "rate_on_per_sec",
    "rate_off_per_sec",
    "mean_on_ms",
    "mean_off_ms",
    "path",
];

/// The arrival process a [`GeneratorSpec`] instantiates.
#[derive(Debug, Clone, PartialEq)]
pub enum GeneratorKind {
    /// Poisson arrivals at a fixed rate (per second).
    Poisson {
        /// Mean arrivals per second.
        rate_per_sec: f64,
    },
    /// Bursty on-off (two-state MMPP) arrivals.
    OnOff {
        /// Arrival rate during the on phase (per second, must be positive).
        rate_on_per_sec: f64,
        /// Arrival rate during the off phase (per second, may be zero).
        rate_off_per_sec: f64,
        /// Mean on-phase duration in milliseconds.
        mean_on_ms: f64,
        /// Mean off-phase duration in milliseconds.
        mean_off_ms: f64,
    },
    /// Replay of a recorded JSONL arrival trace.
    Trace {
        /// Path of the trace file, resolved against the scenario file's
        /// directory by the runner.
        path: String,
    },
}

/// One named arrival process of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorSpec {
    /// Label of the generator — appears in every record and names the
    /// recorded trace file (`trace-<name>.jsonl`), so it must be
    /// filename-safe (`[A-Za-z0-9_-]`).
    pub name: String,
    /// The arrival process.
    pub kind: GeneratorKind,
}

impl GeneratorSpec {
    /// Instantiates the generator. Random generators draw from a SplitMix64
    /// stream derived from `(master_seed, generator index)`; trace replay
    /// takes its pre-loaded arrivals (`trace` must be `Some` exactly for
    /// [`GeneratorKind::Trace`]).
    pub fn build(&self, seed: u64, trace: Option<Vec<u64>>) -> Box<dyn TrafficGenerator> {
        match &self.kind {
            GeneratorKind::Poisson { rate_per_sec } => {
                Box::new(PoissonGenerator::new(seed, *rate_per_sec))
            }
            GeneratorKind::OnOff {
                rate_on_per_sec,
                rate_off_per_sec,
                mean_on_ms,
                mean_off_ms,
            } => Box::new(OnOffGenerator::new(
                seed,
                *rate_on_per_sec,
                *rate_off_per_sec,
                *mean_on_ms,
                *mean_off_ms,
            )),
            GeneratorKind::Trace { .. } => Box::new(TraceGenerator::from_arrivals(
                trace.expect("trace generators are built with pre-loaded arrivals"),
            )),
        }
    }

    fn to_json(&self) -> JsonValue {
        let mut entries = vec![("name".to_string(), JsonValue::String(self.name.clone()))];
        match &self.kind {
            GeneratorKind::Poisson { rate_per_sec } => {
                entries.push(("kind".to_string(), JsonValue::String("poisson".into())));
                entries.push(("rate_per_sec".to_string(), JsonValue::Float(*rate_per_sec)));
            }
            GeneratorKind::OnOff {
                rate_on_per_sec,
                rate_off_per_sec,
                mean_on_ms,
                mean_off_ms,
            } => {
                entries.push(("kind".to_string(), JsonValue::String("onoff".into())));
                entries.push((
                    "rate_on_per_sec".to_string(),
                    JsonValue::Float(*rate_on_per_sec),
                ));
                entries.push((
                    "rate_off_per_sec".to_string(),
                    JsonValue::Float(*rate_off_per_sec),
                ));
                entries.push(("mean_on_ms".to_string(), JsonValue::Float(*mean_on_ms)));
                entries.push(("mean_off_ms".to_string(), JsonValue::Float(*mean_off_ms)));
            }
            GeneratorKind::Trace { path } => {
                entries.push(("kind".to_string(), JsonValue::String("trace".into())));
                entries.push(("path".to_string(), JsonValue::String(path.clone())));
            }
        }
        JsonValue::Object(entries)
    }
}

/// A full scenario: generators × workloads × policies over one horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficScenario {
    /// Name of the scenario — names the session directory, so it must be
    /// filename-safe (`[A-Za-z0-9_-]`).
    pub scenario: String,
    /// Master seed every stream of randomness is derived from.
    pub seed: u64,
    /// Number of parallel service slots jobs are dispatched onto.
    pub slots: usize,
    /// Virtual-clock horizon: arrivals stop at this time (milliseconds).
    pub duration_ms: u64,
    /// Jobs arriving before this virtual time are excluded from every
    /// latency, throughput and utilization statistic (milliseconds).
    pub warmup_ms: u64,
    /// Iterations of the per-(workload, policy) measurement job — the size
    /// of the service-time pool jobs sample from.
    pub iterations: usize,
    /// Bound on the waiting queue per cell; arrivals beyond it are dropped.
    /// `None` means unbounded.
    pub queue_capacity: Option<usize>,
    /// Tile count override for the measurement jobs (`None`: workload
    /// default).
    pub tiles: Option<usize>,
    /// The arrival processes.
    pub generators: Vec<GeneratorSpec>,
    /// Workload names, resolved through the engine registry.
    pub workloads: Vec<String>,
    /// Policies to sweep. Empty means all five, in [`PolicyKind::ALL`]
    /// order.
    pub policies: Vec<PolicyKind>,
}

fn filename_safe(value: &str) -> bool {
    !value.is_empty()
        && value
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

fn invalid(field: &'static str, reason: String) -> TrafficError {
    TrafficError::Scenario { field, reason }
}

impl TrafficScenario {
    /// The policies this scenario sweeps: the explicit list, or all five.
    pub fn resolved_policies(&self) -> Vec<PolicyKind> {
        if self.policies.is_empty() {
            PolicyKind::ALL.to_vec()
        } else {
            self.policies.clone()
        }
    }

    /// The cells of the scenario in canonical (generator, workload, policy)
    /// order — the order cells run and appear in every output file.
    pub fn cells(&self) -> Vec<(usize, usize, PolicyKind)> {
        let policies = self.resolved_policies();
        let mut cells = Vec::new();
        for generator in 0..self.generators.len() {
            for workload in 0..self.workloads.len() {
                for &policy in &policies {
                    cells.push((generator, workload, policy));
                }
            }
        }
        cells
    }

    /// The measurement job of one workload of this scenario. The seed is
    /// the scenario's master seed: service pools depend on (seed, workload,
    /// tiles, iterations) and nothing else.
    pub fn measurement_spec(&self, workload: &str) -> JobSpec {
        let mut spec = JobSpec::new(workload)
            .with_iterations(self.iterations)
            .with_seed(self.seed)
            .with_policies(self.resolved_policies());
        if let Some(tiles) = self.tiles {
            spec = spec.with_tiles(tiles);
        }
        spec
    }

    /// Validates every cross-field constraint.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::Scenario`] naming the offending field.
    pub fn validate(&self) -> Result<(), TrafficError> {
        if !filename_safe(&self.scenario) {
            return Err(invalid(
                "scenario",
                format!(
                    "{:?} must be non-empty and use only [A-Za-z0-9_-]",
                    self.scenario
                ),
            ));
        }
        if self.slots == 0 {
            return Err(invalid("slots", "need at least one service slot".into()));
        }
        if self.duration_ms == 0 {
            return Err(invalid(
                "duration_ms",
                "the horizon must be positive".into(),
            ));
        }
        if self.warmup_ms >= self.duration_ms {
            return Err(invalid(
                "warmup_ms",
                format!(
                    "warmup ({} ms) must end before the horizon ({} ms)",
                    self.warmup_ms, self.duration_ms
                ),
            ));
        }
        if self.iterations == 0 {
            return Err(invalid(
                "iterations",
                "the service pool needs at least one measured iteration".into(),
            ));
        }
        if self.queue_capacity == Some(0) {
            return Err(invalid(
                "queue_capacity",
                "a bounded queue needs capacity for at least one job \
                 (omit the field for an unbounded queue)"
                    .into(),
            ));
        }
        if self.generators.is_empty() {
            return Err(invalid("generators", "need at least one generator".into()));
        }
        for (index, generator) in self.generators.iter().enumerate() {
            if !filename_safe(&generator.name) {
                return Err(invalid(
                    "generators",
                    format!(
                        "generator {index}: name {:?} must be non-empty and use \
                         only [A-Za-z0-9_-]",
                        generator.name
                    ),
                ));
            }
            if self.generators[..index]
                .iter()
                .any(|earlier| earlier.name == generator.name)
            {
                return Err(invalid(
                    "generators",
                    format!("generator name {:?} appears twice", generator.name),
                ));
            }
            let positive = |field: &str, value: f64| {
                if value.is_finite() && value > 0.0 {
                    Ok(())
                } else {
                    Err(invalid(
                        "generators",
                        format!(
                            "generator {:?}: {field} must be positive and finite, got {value}",
                            generator.name
                        ),
                    ))
                }
            };
            match &generator.kind {
                GeneratorKind::Poisson { rate_per_sec } => {
                    positive("rate_per_sec", *rate_per_sec)?;
                }
                GeneratorKind::OnOff {
                    rate_on_per_sec,
                    rate_off_per_sec,
                    mean_on_ms,
                    mean_off_ms,
                } => {
                    positive("rate_on_per_sec", *rate_on_per_sec)?;
                    positive("mean_on_ms", *mean_on_ms)?;
                    positive("mean_off_ms", *mean_off_ms)?;
                    if !rate_off_per_sec.is_finite() || *rate_off_per_sec < 0.0 {
                        return Err(invalid(
                            "generators",
                            format!(
                                "generator {:?}: rate_off_per_sec must be \
                                 non-negative and finite, got {rate_off_per_sec}",
                                generator.name
                            ),
                        ));
                    }
                }
                GeneratorKind::Trace { path } => {
                    if path.is_empty() {
                        return Err(invalid(
                            "generators",
                            format!("generator {:?}: path must be non-empty", generator.name),
                        ));
                    }
                }
            }
        }
        if self.workloads.is_empty() {
            return Err(invalid("workloads", "need at least one workload".into()));
        }
        for (index, workload) in self.workloads.iter().enumerate() {
            if workload.is_empty() {
                return Err(invalid(
                    "workloads",
                    format!("workload {index} must be a non-empty name"),
                ));
            }
            if self.workloads[..index].contains(workload) {
                return Err(invalid(
                    "workloads",
                    format!("workload {workload:?} appears twice"),
                ));
            }
        }
        let policies = self.resolved_policies();
        for (index, policy) in policies.iter().enumerate() {
            if policies[..index].contains(policy) {
                return Err(invalid(
                    "policies",
                    format!("policy {policy} appears twice"),
                ));
            }
        }
        if self.tiles == Some(0) {
            return Err(invalid(
                "tiles",
                "the platform needs at least one tile".into(),
            ));
        }
        Ok(())
    }

    /// Parses a scenario from JSON text — strictly: unknown or duplicate
    /// fields are rejected with the nearest valid name, like every other
    /// wire object of the workspace.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::Scenario`] (or a wrapped [`EngineError`] for
    /// malformed JSON / field-set violations).
    pub fn from_json_text(text: &str) -> Result<Self, TrafficError> {
        let value = drhw_engine::json::parse(text)
            .map_err(|e| invalid("scenario", format!("malformed JSON: {e}")))?;
        Self::from_json(&value)
    }

    /// Parses a scenario from a JSON value. See
    /// [`from_json_text`](Self::from_json_text).
    ///
    /// # Errors
    ///
    /// As [`from_json_text`](Self::from_json_text).
    pub fn from_json(value: &JsonValue) -> Result<Self, TrafficError> {
        let Some(entries) = value.entries() else {
            return Err(invalid("scenario", "expected a JSON object".into()));
        };
        check_object_fields(entries, "traffic scenario", &SCENARIO_FIELDS, &[])
            .map_err(TrafficError::Engine)?;

        let scenario = match value.get("scenario") {
            Some(v) => v
                .as_str()
                .ok_or_else(|| invalid("scenario", format!("expected a string, got {v:?}")))?
                .to_string(),
            None => return Err(invalid("scenario", "missing required field".into())),
        };
        let u64_field = |field: &'static str| -> Result<Option<u64>, TrafficError> {
            match value.get(field) {
                Some(v) => Ok(Some(v.as_u64().ok_or_else(|| {
                    invalid(field, format!("expected an unsigned integer, got {v:?}"))
                })?)),
                None => Ok(None),
            }
        };
        let usize_field = |field: &'static str| -> Result<Option<usize>, TrafficError> {
            match value.get(field) {
                Some(v) => Ok(Some(v.as_usize().ok_or_else(|| {
                    invalid(field, format!("expected an unsigned integer, got {v:?}"))
                })?)),
                None => Ok(None),
            }
        };

        let seed = u64_field("seed")?.unwrap_or(DEFAULT_SEED);
        let slots = usize_field("slots")?.unwrap_or(DEFAULT_SLOTS);
        let duration_ms = u64_field("duration_ms")?
            .ok_or_else(|| invalid("duration_ms", "missing required field".into()))?;
        let warmup_ms = u64_field("warmup_ms")?.unwrap_or(0);
        let iterations = usize_field("iterations")?.unwrap_or(DEFAULT_ITERATIONS);
        let queue_capacity = usize_field("queue_capacity")?;
        let tiles = usize_field("tiles")?;

        let generator_items = match value.get("generators") {
            Some(v) => v
                .as_array()
                .ok_or_else(|| invalid("generators", format!("expected an array, got {v:?}")))?,
            None => return Err(invalid("generators", "missing required field".into())),
        };
        let mut generators = Vec::with_capacity(generator_items.len());
        for item in generator_items {
            generators.push(parse_generator(item)?);
        }

        let workloads = match value.get("workloads") {
            Some(v) => {
                let items = v
                    .as_array()
                    .ok_or_else(|| invalid("workloads", format!("expected an array, got {v:?}")))?;
                items
                    .iter()
                    .map(|item| {
                        item.as_str().map(str::to_string).ok_or_else(|| {
                            invalid("workloads", format!("expected a string, got {item:?}"))
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?
            }
            None => return Err(invalid("workloads", "missing required field".into())),
        };

        let mut policies = Vec::new();
        if let Some(v) = value.get("policies") {
            let items = v
                .as_array()
                .ok_or_else(|| invalid("policies", format!("expected an array, got {v:?}")))?;
            for item in items {
                let name = item.as_str().ok_or_else(|| {
                    invalid("policies", format!("expected a string, got {item:?}"))
                })?;
                policies.push(PolicyKind::parse(name).ok_or_else(|| {
                    let known: Vec<String> =
                        PolicyKind::ALL.iter().map(|p| p.to_string()).collect();
                    invalid(
                        "policies",
                        format!("unknown policy {name:?}; known: {}", known.join(", ")),
                    )
                })?);
            }
        }

        let scenario = TrafficScenario {
            scenario,
            seed,
            slots,
            duration_ms,
            warmup_ms,
            iterations,
            queue_capacity,
            tiles,
            generators,
            workloads,
            policies,
        };
        scenario.validate()?;
        Ok(scenario)
    }

    /// Renders the scenario as a JSON object — the inverse of
    /// [`from_json`](Self::from_json); optional fields are omitted when at
    /// their defaults.
    pub fn to_json(&self) -> JsonValue {
        let mut entries = vec![
            (
                "scenario".to_string(),
                JsonValue::String(self.scenario.clone()),
            ),
            ("seed".to_string(), JsonValue::UInt(self.seed)),
            ("slots".to_string(), JsonValue::UInt(self.slots as u64)),
            ("duration_ms".to_string(), JsonValue::UInt(self.duration_ms)),
            ("warmup_ms".to_string(), JsonValue::UInt(self.warmup_ms)),
            (
                "iterations".to_string(),
                JsonValue::UInt(self.iterations as u64),
            ),
        ];
        if let Some(capacity) = self.queue_capacity {
            entries.push((
                "queue_capacity".to_string(),
                JsonValue::UInt(capacity as u64),
            ));
        }
        if let Some(tiles) = self.tiles {
            entries.push(("tiles".to_string(), JsonValue::UInt(tiles as u64)));
        }
        entries.push((
            "generators".to_string(),
            JsonValue::Array(self.generators.iter().map(GeneratorSpec::to_json).collect()),
        ));
        entries.push((
            "workloads".to_string(),
            JsonValue::Array(
                self.workloads
                    .iter()
                    .map(|w| JsonValue::String(w.clone()))
                    .collect(),
            ),
        ));
        if !self.policies.is_empty() {
            entries.push((
                "policies".to_string(),
                JsonValue::Array(
                    self.policies
                        .iter()
                        .map(|p| JsonValue::String(p.to_string()))
                        .collect(),
                ),
            ));
        }
        JsonValue::Object(entries)
    }
}

fn parse_generator(value: &JsonValue) -> Result<GeneratorSpec, TrafficError> {
    let Some(entries) = value.entries() else {
        return Err(invalid(
            "generators",
            format!("each generator must be a JSON object, got {value:?}"),
        ));
    };
    check_object_fields(entries, "traffic generator", &GENERATOR_FIELDS, &[])
        .map_err(TrafficError::Engine)?;
    let name = match value.get("name") {
        Some(v) => v
            .as_str()
            .ok_or_else(|| invalid("generators", format!("name: expected a string, got {v:?}")))?
            .to_string(),
        None => {
            return Err(invalid(
                "generators",
                "each generator needs a name".to_string(),
            ))
        }
    };
    let kind_name = match value.get("kind") {
        Some(v) => v
            .as_str()
            .ok_or_else(|| invalid("generators", format!("kind: expected a string, got {v:?}")))?,
        None => {
            return Err(invalid(
                "generators",
                format!("generator {name:?} needs a kind (poisson, onoff or trace)"),
            ))
        }
    };
    let float = |field: &'static str| -> Result<Option<f64>, TrafficError> {
        match value.get(field) {
            Some(v) => Ok(Some(v.as_f64().ok_or_else(|| {
                invalid(
                    "generators",
                    format!("generator {name:?}: {field}: expected a number, got {v:?}"),
                )
            })?)),
            None => Ok(None),
        }
    };
    let require = |field: &'static str, v: Option<f64>| -> Result<f64, TrafficError> {
        v.ok_or_else(|| {
            invalid(
                "generators",
                format!("generator {name:?} ({kind_name}) needs {field}"),
            )
        })
    };
    let forbid = |fields: &[&'static str]| -> Result<(), TrafficError> {
        for field in fields {
            if value.get(field).is_some() {
                return Err(invalid(
                    "generators",
                    format!("generator {name:?} ({kind_name}) does not take {field}"),
                ));
            }
        }
        Ok(())
    };
    let kind = match kind_name {
        "poisson" => {
            forbid(&[
                "rate_on_per_sec",
                "rate_off_per_sec",
                "mean_on_ms",
                "mean_off_ms",
                "path",
            ])?;
            GeneratorKind::Poisson {
                rate_per_sec: require("rate_per_sec", float("rate_per_sec")?)?,
            }
        }
        "onoff" => {
            forbid(&["rate_per_sec", "path"])?;
            GeneratorKind::OnOff {
                rate_on_per_sec: require("rate_on_per_sec", float("rate_on_per_sec")?)?,
                rate_off_per_sec: float("rate_off_per_sec")?.unwrap_or(0.0),
                mean_on_ms: require("mean_on_ms", float("mean_on_ms")?)?,
                mean_off_ms: require("mean_off_ms", float("mean_off_ms")?)?,
            }
        }
        "trace" => {
            forbid(&[
                "rate_per_sec",
                "rate_on_per_sec",
                "rate_off_per_sec",
                "mean_on_ms",
                "mean_off_ms",
            ])?;
            let path = match value.get("path") {
                Some(v) => v
                    .as_str()
                    .ok_or_else(|| {
                        invalid(
                            "generators",
                            format!("generator {name:?}: path: expected a string, got {v:?}"),
                        )
                    })?
                    .to_string(),
                None => {
                    return Err(invalid(
                        "generators",
                        format!("generator {name:?} (trace) needs path"),
                    ))
                }
            };
            GeneratorKind::Trace { path }
        }
        other => {
            return Err(invalid(
                "generators",
                format!("generator {name:?}: unknown kind {other:?}; known: poisson, onoff, trace"),
            ))
        }
    };
    Ok(GeneratorSpec { name, kind })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> &'static str {
        r#"{
            "scenario": "smoke",
            "duration_ms": 1000,
            "generators": [{"name": "g", "kind": "poisson", "rate_per_sec": 10}],
            "workloads": ["multimedia"]
        }"#
    }

    #[test]
    fn minimal_scenario_takes_defaults() {
        let scenario = TrafficScenario::from_json_text(minimal()).unwrap();
        assert_eq!(scenario.seed, DEFAULT_SEED);
        assert_eq!(scenario.slots, 1);
        assert_eq!(scenario.warmup_ms, 0);
        assert_eq!(scenario.iterations, DEFAULT_ITERATIONS);
        assert_eq!(scenario.queue_capacity, None);
        assert_eq!(scenario.resolved_policies(), PolicyKind::ALL.to_vec());
        assert_eq!(scenario.cells().len(), 5);
    }

    #[test]
    fn json_round_trips() {
        let text = r#"{
            "scenario": "full",
            "seed": 7,
            "slots": 3,
            "duration_ms": 5000,
            "warmup_ms": 500,
            "iterations": 64,
            "queue_capacity": 16,
            "tiles": 8,
            "generators": [
                {"name": "steady", "kind": "poisson", "rate_per_sec": 40.5},
                {"name": "bursty", "kind": "onoff", "rate_on_per_sec": 120.0,
                 "rate_off_per_sec": 5.0, "mean_on_ms": 400.0, "mean_off_ms": 600.0},
                {"name": "replay", "kind": "trace", "path": "trace-steady.jsonl"}
            ],
            "workloads": ["multimedia", "pocket_gl"],
            "policies": ["no-prefetch", "hybrid"]
        }"#;
        let scenario = TrafficScenario::from_json_text(text).unwrap();
        let round = TrafficScenario::from_json(&scenario.to_json()).unwrap();
        assert_eq!(scenario, round);
        assert_eq!(scenario.cells().len(), 3 * 2 * 2);
    }

    #[test]
    fn unknown_field_is_rejected_with_nearest() {
        let text = minimal().replace("\"duration_ms\"", "\"duration_mss\"");
        let err = TrafficScenario::from_json_text(&text).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("duration_mss"), "{message}");
        assert!(message.contains("duration_ms"), "{message}");
    }

    #[test]
    fn duplicate_generator_names_are_rejected() {
        let text = r#"{
            "scenario": "dup",
            "duration_ms": 1000,
            "generators": [
                {"name": "g", "kind": "poisson", "rate_per_sec": 10},
                {"name": "g", "kind": "poisson", "rate_per_sec": 20}
            ],
            "workloads": ["multimedia"]
        }"#;
        let err = TrafficScenario::from_json_text(text).unwrap_err();
        assert!(err.to_string().contains("appears twice"), "{err}");
    }

    #[test]
    fn warmup_must_end_before_the_horizon() {
        let text = minimal().replace(
            "\"duration_ms\": 1000,",
            "\"duration_ms\": 1000, \"warmup_ms\": 1000,",
        );
        let err = TrafficScenario::from_json_text(&text).unwrap_err();
        assert!(err.to_string().contains("warmup"), "{err}");
    }

    #[test]
    fn generator_kind_fields_are_strict() {
        let text = r#"{
            "scenario": "strict",
            "duration_ms": 1000,
            "generators": [{"name": "g", "kind": "poisson", "rate_per_sec": 10, "path": "x"}],
            "workloads": ["multimedia"]
        }"#;
        let err = TrafficScenario::from_json_text(text).unwrap_err();
        assert!(err.to_string().contains("does not take path"), "{err}");
    }

    #[test]
    fn zero_queue_capacity_is_rejected() {
        let text = minimal().replace(
            "\"duration_ms\": 1000,",
            "\"duration_ms\": 1000, \"queue_capacity\": 0,",
        );
        let err = TrafficScenario::from_json_text(&text).unwrap_err();
        assert!(err.to_string().contains("queue_capacity"), "{err}");
    }
}
