//! On-disk traffic sessions: the layout the `traffic` binary (and the test
//! battery) writes a scenario run into.
//!
//! A session lives at `<out>/<scenario>/` and holds:
//!
//! * `TRAFFIC_results.jsonl` — the full event stream (header, cell and
//!   `traffic_event` lines), streamed during the run and moved into place
//!   atomically when it completes;
//! * `TRAFFIC_summary.json` — the per-cell aggregate document (schema v8);
//! * `trace-<generator>.jsonl` — every generator's recorded arrival stream,
//!   replayable with a `{"kind": "trace"}` generator.
//!
//! All files are byte-deterministic for a given scenario, at any engine
//! worker count.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use drhw_engine::Engine;

use crate::driver::{run_scenario, ScenarioOutcome};
use crate::record::render_summary;
use crate::record::render_trace;
use crate::scenario::TrafficScenario;
use crate::TrafficError;

/// File name of the event stream.
pub const RESULTS_FILE: &str = "TRAFFIC_results.jsonl";
/// File name of the aggregate summary.
pub const SUMMARY_FILE: &str = "TRAFFIC_summary.json";

/// Where a completed session ended up on disk.
#[derive(Debug)]
pub struct SessionOutcome {
    /// The in-memory run outcome.
    pub outcome: ScenarioOutcome,
    /// The session directory (`<out>/<scenario>/`).
    pub dir: PathBuf,
}

fn io_error(path: &Path, e: std::io::Error) -> TrafficError {
    TrafficError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// Writes `contents` to `path` atomically (temp file + rename), so readers
/// never observe a torn file.
fn write_atomic(path: &Path, contents: &str) -> Result<(), TrafficError> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, contents).map_err(|e| io_error(&tmp, e))?;
    fs::rename(&tmp, path).map_err(|e| io_error(path, e))
}

/// Runs `scenario` into `<out>/<scenario.scenario>/`: streams the event log,
/// then writes the summary and every generator's trace. Trace-replay paths
/// in the scenario resolve against `base_dir`. Returns the outcome and the
/// session directory.
///
/// # Errors
///
/// Returns scenario, engine, trace and filesystem errors.
pub fn run_session(
    engine: &Engine,
    scenario: &TrafficScenario,
    base_dir: &Path,
    out: &Path,
) -> Result<SessionOutcome, TrafficError> {
    scenario.validate()?;
    let dir = out.join(&scenario.scenario);
    fs::create_dir_all(&dir).map_err(|e| io_error(&dir, e))?;

    let results_path = dir.join(RESULTS_FILE);
    let tmp_path = dir.join(format!("{RESULTS_FILE}.tmp"));
    let mut events =
        std::io::BufWriter::new(fs::File::create(&tmp_path).map_err(|e| io_error(&tmp_path, e))?);
    let outcome = run_scenario(engine, scenario, base_dir, &mut events)?;
    events.flush().map_err(|e| io_error(&tmp_path, e))?;
    drop(events);
    fs::rename(&tmp_path, &results_path).map_err(|e| io_error(&results_path, e))?;

    for (name, arrivals) in &outcome.traces {
        write_atomic(
            &dir.join(format!("trace-{name}.jsonl")),
            &render_trace(arrivals),
        )?;
    }
    write_atomic(&dir.join(SUMMARY_FILE), &render_summary(&outcome))?;

    Ok(SessionOutcome { outcome, dir })
}
