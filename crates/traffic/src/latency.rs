//! Log-bucketed latency histogram.
//!
//! [`Histogram`] records non-negative durations in integer microseconds into
//! log-linear buckets: values below 2^5 get one exact bucket each, and every
//! further power-of-two octave is split into 32 equal sub-buckets. A
//! recorded value therefore lands in a bucket whose upper edge overestimates
//! it by **at most 1/32 (3.125 %)** — and percentiles, which report the
//! upper edge of the bucket holding the nearest-rank sample (clamped to the
//! observed min/max), inherit the same one-sided error bound against exact
//! sorted-sample quantiles. The integration suite proptests exactly that
//! contract.
//!
//! The bucket layout is fixed (1920 buckets covering all of `u64`), so
//! histograms merge losslessly and percentile queries are a single
//! cumulative walk — no samples are retained. Everything is integer
//! arithmetic; the same inputs produce the same histogram on any platform.

use drhw_model::Time;

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave.
const SUBS: usize = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range: one exact bucket per
/// value below `SUBS`, then octaves 1..=59 (the msb of `u64::MAX` is 63,
/// mapping to octave `63 - SUB_BITS + 1 = 59`) of `SUBS` buckets each.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUBS;

/// The bucket index a microsecond value lands in.
fn bucket_index(value_us: u64) -> usize {
    if value_us < SUBS as u64 {
        return value_us as usize;
    }
    let msb = 63 - value_us.leading_zeros();
    let octave = (msb - SUB_BITS + 1) as usize;
    let sub = ((value_us >> (msb - SUB_BITS)) as usize) & (SUBS - 1);
    octave * SUBS + sub
}

/// The smallest microsecond value mapping to bucket `index`.
fn bucket_floor(index: usize) -> u64 {
    let octave = index / SUBS;
    let sub = (index % SUBS) as u64;
    if octave == 0 {
        sub
    } else {
        (SUBS as u64 + sub) << (octave - 1)
    }
}

/// The largest microsecond value mapping to bucket `index`.
fn bucket_ceil(index: usize) -> u64 {
    if index + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_floor(index + 1) - 1
    }
}

/// A mergeable log-bucketed histogram of durations (integer microseconds).
///
/// See the [module docs](self) for the bucket layout and the ≤ 3.125 %
/// one-sided percentile error bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum_us: u128,
    min_us: u64,
    max_us: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
        }
    }

    /// Records one duration given in microseconds.
    pub fn record_us(&mut self, value_us: u64) {
        self.counts[bucket_index(value_us)] += 1;
        self.total += 1;
        self.sum_us += u128::from(value_us);
        self.min_us = self.min_us.min(value_us);
        self.max_us = self.max_us.max(value_us);
    }

    /// Records one [`Time`] duration.
    pub fn record(&mut self, value: Time) {
        self.record_us(value.as_micros());
    }

    /// Records a wall-clock duration in (fractional) milliseconds, rounded
    /// to the nearest microsecond. Negative and non-finite inputs are
    /// ignored — a wall-clock sample can only be malformed, never useful.
    pub fn record_ms_f64(&mut self, value_ms: f64) {
        if value_ms.is_finite() && value_ms >= 0.0 {
            self.record_us((value_ms * 1e3).round() as u64);
        }
    }

    /// Folds another histogram into this one. The result equals recording
    /// both sample streams into a single histogram, in any order.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum_us += other.sum_us;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The smallest recorded value in microseconds (0 when empty).
    pub fn min_us(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min_us
        }
    }

    /// The largest recorded value in microseconds (0 when empty).
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Mean of the recorded values in milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.total as f64 / 1e3
        }
    }

    /// The largest recorded value in milliseconds (0 when empty).
    pub fn max_ms(&self) -> f64 {
        self.max_us as f64 / 1e3
    }

    /// The nearest-rank `percentile` (0 < p ≤ 100) in microseconds: the
    /// upper edge of the bucket holding the rank-⌈p/100·n⌉ sample, clamped
    /// to the observed min/max. Returns 0 on an empty histogram.
    pub fn percentile_us(&self, percentile: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((percentile / 100.0) * self.total as f64).ceil() as u64;
        let rank = rank.clamp(1, self.total);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return bucket_ceil(index).clamp(self.min_us, self.max_us);
            }
        }
        self.max_us
    }

    /// [`percentile_us`](Self::percentile_us) in milliseconds.
    pub fn percentile_ms(&self, percentile: f64) -> f64 {
        self.percentile_us(percentile) as f64 / 1e3
    }

    /// Median (p50) in milliseconds.
    pub fn p50_ms(&self) -> f64 {
        self.percentile_ms(50.0)
    }

    /// 99th percentile in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.percentile_ms(99.0)
    }

    /// 99.9th percentile in milliseconds.
    pub fn p999_ms(&self) -> f64 {
        self.percentile_ms(99.9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        // Every bucket's ceiling is the next bucket's floor minus one, and
        // boundary values map back to their own bucket.
        for index in 0..BUCKETS {
            let floor = bucket_floor(index);
            let ceil = bucket_ceil(index);
            assert!(floor <= ceil, "bucket {index}: floor {floor} > ceil {ceil}");
            assert_eq!(bucket_index(floor), index);
            assert_eq!(bucket_index(ceil), index);
            if index + 1 < BUCKETS {
                assert_eq!(bucket_floor(index + 1), ceil + 1);
            }
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        for value in [1u64, 31, 32, 33, 100, 1000, 12_345, 1 << 30, u64::MAX / 3] {
            let ceil = bucket_ceil(bucket_index(value));
            assert!(ceil >= value);
            // ceil - value < value / 32 + 1
            assert!(ceil - value <= value / 32, "value {value} ceil {ceil}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..32u64 {
            h.record_us(v);
        }
        assert_eq!(h.percentile_us(50.0), 15);
        assert_eq!(h.percentile_us(100.0), 31);
        assert_eq!(h.min_us(), 0);
        assert_eq!(h.max_us(), 31);
    }

    #[test]
    fn percentiles_clamp_to_observed_extremes() {
        let mut h = Histogram::new();
        h.record_us(1_000_003);
        assert_eq!(h.percentile_us(50.0), 1_000_003);
        assert_eq!(h.percentile_us(99.9), 1_000_003);
        assert_eq!(h.max_us(), 1_000_003);
    }

    #[test]
    fn merge_equals_recording_everything_once() {
        let mut all = Histogram::new();
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for i in 0..500u64 {
            let v = i * i % 7919;
            all.record_us(v);
            if i % 2 == 0 {
                left.record_us(v);
            } else {
                right.record_us(v);
            }
        }
        left.merge(&right);
        assert_eq!(left, all);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile_us(99.0), 0);
        assert_eq!(h.mean_ms(), 0.0);
        assert_eq!(h.min_us(), 0);
        assert_eq!(h.max_us(), 0);
    }

    #[test]
    fn wall_clock_samples_round_to_microseconds() {
        let mut h = Histogram::new();
        h.record_ms_f64(1.2345);
        h.record_ms_f64(-3.0); // ignored
        h.record_ms_f64(f64::NAN); // ignored
        assert_eq!(h.count(), 1);
        assert_eq!(h.min_us(), 1235);
    }

    #[test]
    fn time_values_record_as_micros() {
        let mut h = Histogram::new();
        h.record(Time::from_millis(2));
        assert_eq!(h.min_us(), 2000);
        assert!((h.mean_ms() - 2.0).abs() < 1e-9);
    }
}
