//! The deterministic open-loop driver: a discrete-event simulation on the
//! virtual clock.
//!
//! Each cell of a scenario — one (generator, workload, policy) triple — is
//! an independent queueing system: arrivals from the generator's stream are
//! queued FIFO against `slots` parallel service slots whose service times
//! are sampled from the cell's *service pool*, the real per-iteration
//! simulated execution times measured through
//! [`Engine::measure_service_times`]. The driver walks virtual time event
//! by event, streaming `traffic_event` records in order, and folds queue
//! wait, service and sojourn latencies into log-bucketed histograms.
//!
//! # Determinism
//!
//! Everything is derived from the scenario: arrival streams from
//! `(seed, generator name)`, service draws from `(seed, workload, policy,
//! arrival index)`, and service pools from the engine's bit-identical
//! sequential measurement pass. The virtual clock is integer microseconds
//! and ties resolve by fixed rules (completions before arrivals; equal-time
//! completions by job index; freed work dispatches before the clock moves).
//! A scenario's results are therefore **byte-identical at any engine worker
//! count** — the property the integration battery and the CI `traffic` job
//! pin.
//!
//! # Measurement window
//!
//! Jobs arriving in `[warmup, duration)` are *measured*: only they
//! contribute to latency histograms, offered throughput and drop counts.
//! Latencies of measured jobs count even when the job completes after the
//! horizon (excluding them would bias the tail away from exactly the
//! overloaded cells where it matters). Achieved throughput counts
//! completions inside the window, and per-slot utilization is the busy
//! overlap with the window — both over the same window, so offered vs
//! achieved reads directly as a saturation check.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::io::Write;
use std::path::Path;

use drhw_engine::Engine;
use drhw_model::Time;
use drhw_prefetch::PolicyKind;

use crate::generator::SplitMix64;
use crate::latency::Histogram;
use crate::record;
use crate::scenario::{GeneratorKind, TrafficScenario};
use crate::TrafficError;

/// FNV-1a over a byte string — the workspace's stable string hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// One SplitMix64 mixing step applied to a raw value — used to turn
/// structured tags (seed ⊕ name hashes) into well-spread stream seeds.
fn mix64(value: u64) -> u64 {
    SplitMix64::new(value).next_u64()
}

/// The service pool of one (workload, policy) pair: the measured
/// per-iteration execution times jobs sample from, plus the paper's
/// aggregate overhead metric for the same run.
#[derive(Debug, Clone)]
pub struct ServicePool {
    /// The policy measured.
    pub policy: PolicyKind,
    /// Per-iteration simulated execution time, in iteration order.
    pub times: Vec<Time>,
    /// Reconfiguration overhead of the measurement run, in percent — the
    /// paper's headline metric, reported alongside the latency numbers.
    pub overhead_percent: f64,
}

/// Everything one cell's queueing run produced.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// Cell index in canonical (generator, workload, policy) order.
    pub cell: usize,
    /// Generator label.
    pub generator: String,
    /// Workload name.
    pub workload: String,
    /// Policy simulated.
    pub policy: PolicyKind,
    /// Arrivals before the horizon (measured or not).
    pub arrived: u64,
    /// Arrivals inside the measurement window.
    pub measured: u64,
    /// Dropped arrivals (bounded queue overflow), total.
    pub dropped: u64,
    /// Dropped arrivals inside the measurement window.
    pub dropped_measured: u64,
    /// Completions whose completion time fell inside the window.
    pub completed_in_window: u64,
    /// Queue-wait latencies of measured jobs.
    pub wait: Histogram,
    /// Service latencies of measured jobs.
    pub service: Histogram,
    /// Sojourn (arrival → completion) latencies of measured jobs.
    pub sojourn: Histogram,
    /// Busy time of each slot overlapping the window, in microseconds.
    pub slot_busy_us: Vec<u64>,
    /// The measurement window length, in microseconds.
    pub window_us: u64,
    /// Overhead of the cell's measurement run (see
    /// [`ServicePool::overhead_percent`]).
    pub overhead_percent: f64,
}

impl CellReport {
    /// Offered load: measured arrivals per second of window.
    pub fn offered_per_sec(&self) -> f64 {
        self.measured as f64 / (self.window_us as f64 / 1e6)
    }

    /// Achieved throughput: in-window completions per second of window.
    pub fn achieved_per_sec(&self) -> f64 {
        self.completed_in_window as f64 / (self.window_us as f64 / 1e6)
    }

    /// Busy fraction of each slot over the measurement window.
    pub fn utilization_per_slot(&self) -> Vec<f64> {
        self.slot_busy_us
            .iter()
            .map(|&busy| busy as f64 / self.window_us as f64)
            .collect()
    }

    /// Mean busy fraction across slots.
    pub fn utilization_mean(&self) -> f64 {
        if self.slot_busy_us.is_empty() {
            0.0
        } else {
            let total: u64 = self.slot_busy_us.iter().sum();
            total as f64 / (self.window_us as f64 * self.slot_busy_us.len() as f64)
        }
    }
}

/// The result of running a whole scenario.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The scenario that ran.
    pub scenario: TrafficScenario,
    /// One report per cell, in canonical order.
    pub cells: Vec<CellReport>,
    /// The arrival stream of each generator (name, absolute microseconds) —
    /// what the runner records as `trace-<name>.jsonl` for later replay.
    pub traces: Vec<(String, Vec<u64>)>,
}

/// Runs a scenario: measures service pools through the engine, materialises
/// every generator's arrival stream, then walks each cell's queueing run in
/// canonical order, streaming the results log (header, cell and event
/// lines) to `events` as virtual time advances.
///
/// Trace-replay generator paths resolve against `base_dir` (typically the
/// scenario file's directory).
///
/// # Errors
///
/// Returns scenario-validation, trace-loading, engine and sink I/O errors.
pub fn run_scenario(
    engine: &Engine,
    scenario: &TrafficScenario,
    base_dir: &Path,
    events: &mut dyn Write,
) -> Result<ScenarioOutcome, TrafficError> {
    scenario.validate()?;
    let duration_us = scenario.duration_ms * 1000;
    let warmup_us = scenario.warmup_ms * 1000;

    // Service pools: one engine measurement pass per workload (the plan
    // cache makes repeats cheap), each yielding every policy's pool.
    let mut pools: Vec<Vec<ServicePool>> = Vec::with_capacity(scenario.workloads.len());
    for workload in &scenario.workloads {
        let measurements = engine
            .measure_service_times(&scenario.measurement_spec(workload))
            .map_err(TrafficError::Engine)?;
        pools.push(
            measurements
                .into_iter()
                .map(|m| ServicePool {
                    policy: m.policy,
                    times: m.service_times,
                    overhead_percent: m.report.overhead_percent(),
                })
                .collect(),
        );
    }

    // Arrival streams: one per generator, shared by all its cells and
    // recorded for replay. Streams stop at the horizon.
    let mut traces: Vec<(String, Vec<u64>)> = Vec::with_capacity(scenario.generators.len());
    for spec in &scenario.generators {
        let arrivals = match &spec.kind {
            GeneratorKind::Trace { path } => {
                let resolved = base_dir.join(path);
                let text = std::fs::read_to_string(&resolved).map_err(|e| TrafficError::Io {
                    path: resolved.display().to_string(),
                    message: e.to_string(),
                })?;
                let mut arrivals = record::parse_trace(&text, path)?;
                arrivals.retain(|&t| t < duration_us);
                arrivals
            }
            _ => {
                let seed = mix64(scenario.seed ^ fnv1a(spec.name.as_bytes()));
                let mut generator = spec.build(seed, None);
                let mut arrivals = Vec::new();
                while let Some(t) = generator.next_arrival_us() {
                    if t >= duration_us {
                        break;
                    }
                    arrivals.push(t);
                }
                arrivals
            }
        };
        traces.push((spec.name.clone(), arrivals));
    }

    let cells = scenario.cells();
    record::write_scenario_header(events, scenario, cells.len())?;

    let mut reports = Vec::with_capacity(cells.len());
    for (cell, (gi, wi, policy)) in cells.into_iter().enumerate() {
        let generator = &scenario.generators[gi].name;
        let workload = &scenario.workloads[wi];
        let pool = pools[wi]
            .iter()
            .find(|pool| pool.policy == policy)
            .expect("measurement covers every resolved policy");
        record::write_cell_line(events, cell, generator, workload, policy, scenario.slots)?;
        let report = run_cell(
            CellSetup {
                cell,
                generator,
                workload,
                policy,
                arrivals: &traces[gi].1,
                pool,
                slots: scenario.slots,
                queue_capacity: scenario.queue_capacity,
                seed: scenario.seed,
                warmup_us,
                duration_us,
            },
            events,
        )?;
        reports.push(report);
    }

    Ok(ScenarioOutcome {
        scenario: scenario.clone(),
        cells: reports,
        traces,
    })
}

/// Everything one cell's queueing run needs.
struct CellSetup<'a> {
    cell: usize,
    generator: &'a str,
    workload: &'a str,
    policy: PolicyKind,
    arrivals: &'a [u64],
    pool: &'a ServicePool,
    slots: usize,
    queue_capacity: Option<usize>,
    seed: u64,
    warmup_us: u64,
    duration_us: u64,
}

/// Per-job bookkeeping of an in-flight cell run.
#[derive(Clone, Copy)]
struct JobInfo {
    arrival_us: u64,
    service_us: u64,
    start_us: u64,
}

fn run_cell(setup: CellSetup<'_>, events: &mut dyn Write) -> Result<CellReport, TrafficError> {
    let window_us = setup.duration_us - setup.warmup_us;
    let mut report = CellReport {
        cell: setup.cell,
        generator: setup.generator.to_string(),
        workload: setup.workload.to_string(),
        policy: setup.policy,
        arrived: 0,
        measured: 0,
        dropped: 0,
        dropped_measured: 0,
        completed_in_window: 0,
        wait: Histogram::new(),
        service: Histogram::new(),
        sojourn: Histogram::new(),
        slot_busy_us: vec![0; setup.slots],
        window_us,
        overhead_percent: setup.pool.overhead_percent,
    };

    // Service draws depend on (seed, workload, policy, arrival index) only —
    // independent of the generator, so a trace replay of another
    // generator's arrivals reproduces identical service times job for job.
    let mut service_rng = SplitMix64::new(mix64(
        mix64(setup.seed ^ fnv1a(setup.workload.as_bytes()))
            ^ fnv1a(setup.policy.to_string().as_bytes()),
    ));
    let pool_len = setup.pool.times.len() as u64;

    let mut jobs: Vec<JobInfo> = Vec::with_capacity(setup.arrivals.len());
    // Completion events: (time, job, slot), earliest time first, ties by
    // job index. Free slots: lowest index first.
    let mut completions: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
    let mut free_slots: BinaryHeap<Reverse<usize>> = (0..setup.slots).map(Reverse).collect();
    let mut queue: VecDeque<u64> = VecDeque::new();
    let mut next_arrival = 0usize;

    // Dispatches queued jobs onto free slots at time `t` (FIFO, lowest free
    // slot first), emitting `start` events and scheduling completions.
    let dispatch = |t: u64,
                    queue: &mut VecDeque<u64>,
                    free_slots: &mut BinaryHeap<Reverse<usize>>,
                    completions: &mut BinaryHeap<Reverse<(u64, u64, usize)>>,
                    jobs: &mut [JobInfo],
                    report: &mut CellReport,
                    events: &mut dyn Write|
     -> Result<(), TrafficError> {
        while !queue.is_empty() {
            let Some(&Reverse(slot)) = free_slots.peek() else {
                break;
            };
            free_slots.pop();
            let job = queue.pop_front().expect("checked non-empty");
            let info = &mut jobs[job as usize];
            info.start_us = t;
            let wait_us = t - info.arrival_us;
            let end_us = t.saturating_add(info.service_us);
            record::write_event_start(events, setup.cell, job, t, slot, wait_us)?;
            completions.push(Reverse((end_us, job, slot)));
            // Busy overlap with the measurement window, accounted up front:
            // the interval is fully determined here.
            let overlap_start = t.max(setup.warmup_us);
            let overlap_end = end_us.min(setup.duration_us);
            if overlap_end > overlap_start {
                report.slot_busy_us[slot] += overlap_end - overlap_start;
            }
        }
        Ok(())
    };

    loop {
        let next_completion_time = completions.peek().map(|Reverse((t, _, _))| *t);
        let next_arrival_time = setup.arrivals.get(next_arrival).copied();
        let take_completion = match (next_completion_time, next_arrival_time) {
            (Some(tc), Some(ta)) => tc <= ta,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_completion {
            let Reverse((t, job, slot)) = completions.pop().expect("peeked non-empty");
            let info = jobs[job as usize];
            let sojourn_us = t - info.arrival_us;
            record::write_event_completion(
                events,
                setup.cell,
                job,
                t,
                slot,
                info.service_us,
                sojourn_us,
            )?;
            if (setup.warmup_us..setup.duration_us).contains(&t) {
                report.completed_in_window += 1;
            }
            if info.arrival_us >= setup.warmup_us {
                report.wait.record_us(info.start_us - info.arrival_us);
                report.service.record_us(info.service_us);
                report.sojourn.record_us(sojourn_us);
            }
            free_slots.push(Reverse(slot));
            dispatch(
                t,
                &mut queue,
                &mut free_slots,
                &mut completions,
                &mut jobs,
                &mut report,
                events,
            )?;
        } else {
            let t = next_arrival_time.expect("checked above");
            next_arrival += 1;
            let job = jobs.len() as u64;
            let service_us = if pool_len == 0 {
                0
            } else {
                setup.pool.times[(service_rng.next_u64() % pool_len) as usize].as_micros()
            };
            jobs.push(JobInfo {
                arrival_us: t,
                service_us,
                start_us: 0,
            });
            let measured = t >= setup.warmup_us;
            report.arrived += 1;
            report.measured += u64::from(measured);
            record::write_event_arrival(events, setup.cell, job, t)?;
            let full = setup
                .queue_capacity
                .is_some_and(|capacity| free_slots.is_empty() && queue.len() >= capacity);
            if full {
                report.dropped += 1;
                report.dropped_measured += u64::from(measured);
                record::write_event_drop(events, setup.cell, job, t)?;
            } else {
                queue.push_back(job);
                dispatch(
                    t,
                    &mut queue,
                    &mut free_slots,
                    &mut completions,
                    &mut jobs,
                    &mut report,
                    events,
                )?;
            }
        }
    }
    debug_assert!(queue.is_empty(), "drain leaves no queued job behind");
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(times_ms: &[u64]) -> ServicePool {
        ServicePool {
            policy: PolicyKind::Hybrid,
            times: times_ms.iter().map(|&ms| Time::from_millis(ms)).collect(),
            overhead_percent: 1.0,
        }
    }

    fn setup<'a>(
        arrivals: &'a [u64],
        pool: &'a ServicePool,
        slots: usize,
        queue_capacity: Option<usize>,
    ) -> CellSetup<'a> {
        CellSetup {
            cell: 0,
            generator: "g",
            workload: "w",
            policy: PolicyKind::Hybrid,
            arrivals,
            pool,
            slots,
            queue_capacity,
            seed: 1,
            warmup_us: 0,
            duration_us: 10_000_000,
        }
    }

    #[test]
    fn single_slot_fifo_queues_and_drains() {
        // Two jobs arrive back to back; the second waits for the first.
        let pool = pool(&[100]); // constant 100 ms service
        let arrivals = [1_000, 2_000];
        let mut sink = Vec::new();
        let report = run_cell(setup(&arrivals, &pool, 1, None), &mut sink).unwrap();
        assert_eq!(report.arrived, 2);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.sojourn.count(), 2);
        // Job 0: sojourn 100 ms. Job 1: waits 99 ms, sojourn 199 ms.
        assert_eq!(report.wait.max_us(), 99_000);
        assert_eq!(report.sojourn.max_us(), 199_000);
        // Busy 200 ms of the 10 s window on the single slot.
        assert_eq!(report.slot_busy_us, vec![200_000]);
        let text = String::from_utf8(sink).unwrap();
        let kinds: Vec<&str> = text
            .lines()
            .filter_map(|line| {
                line.split("\"event\":\"")
                    .nth(1)
                    .and_then(|rest| rest.split('"').next())
            })
            .collect();
        assert_eq!(
            kinds,
            [
                "arrival",
                "start",
                "arrival",
                "completion",
                "start",
                "completion"
            ]
        );
    }

    #[test]
    fn bounded_queue_drops_excess_arrivals() {
        // One slot busy 100 ms, queue capacity 1: the third simultaneousish
        // arrival is dropped.
        let pool = pool(&[100]);
        let arrivals = [1_000, 1_001, 1_002];
        let mut sink = Vec::new();
        let report = run_cell(setup(&arrivals, &pool, 1, Some(1)), &mut sink).unwrap();
        assert_eq!(report.arrived, 3);
        assert_eq!(report.dropped, 1);
        assert_eq!(report.sojourn.count(), 2);
        assert!(String::from_utf8(sink)
            .unwrap()
            .contains("\"event\":\"drop\""));
    }

    #[test]
    fn warmup_excludes_early_jobs_from_stats_but_not_events() {
        let pool = pool(&[10]);
        let arrivals = [1_000, 6_000_000];
        let mut sink = Vec::new();
        let mut s = setup(&arrivals, &pool, 1, None);
        s.warmup_us = 5_000_000;
        let report = run_cell(s, &mut sink).unwrap();
        assert_eq!(report.arrived, 2);
        assert_eq!(report.measured, 1);
        assert_eq!(report.sojourn.count(), 1);
        // Both jobs still appear in the event stream.
        let text = String::from_utf8(sink).unwrap();
        assert_eq!(text.matches("\"event\":\"arrival\"").count(), 2);
        // Only the warm job's busy time counts: 10 ms of the 5 s window.
        assert_eq!(report.slot_busy_us, vec![10_000]);
        assert!((report.utilization_mean() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn two_slots_run_in_parallel_and_tie_break_deterministically() {
        let pool = pool(&[100]);
        let arrivals = [1_000, 1_000, 1_000];
        let mut sink = Vec::new();
        let report = run_cell(setup(&arrivals, &pool, 2, None), &mut sink).unwrap();
        // Jobs 0 and 1 run immediately on slots 0 and 1; job 2 waits 100 ms.
        assert_eq!(report.wait.max_us(), 100_000);
        assert_eq!(report.slot_busy_us, vec![200_000, 100_000]);
        let text = String::from_utf8(sink).unwrap();
        // Completions at the same virtual time appear in job order.
        let completion_jobs: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("\"event\":\"completion\""))
            .map(|l| {
                l.split("\"job\":")
                    .nth(1)
                    .unwrap()
                    .split(',')
                    .next()
                    .unwrap()
            })
            .collect();
        assert_eq!(completion_jobs, ["0", "1", "2"]);
    }
}
