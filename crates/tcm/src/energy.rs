//! A simple energy model for the TCM Pareto exploration.
//!
//! TCM optimises execution time *and* energy: the design-time scheduler emits
//! one Pareto point per interesting trade-off and the run-time scheduler picks
//! the least energy-hungry point that still meets the deadline. The absolute
//! joule figures are irrelevant to the prefetch study — only the shape of the
//! trade-off matters — so the model is deliberately simple: DRHW execution
//! uses the subtask's own energy figure, ISP execution is a configurable
//! factor more expensive (software on an ISP burns more energy per operation
//! than a dedicated datapath), and every configuration load adds the
//! platform's per-load energy.

use drhw_model::{PeClass, Platform, SubtaskGraph};
use serde::{Deserialize, Serialize};

/// Energy accounting used when building Pareto curves and when reporting the
/// energy saved by cancelled loads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    isp_energy_factor: f64,
    tile_static_mj_per_ms: f64,
    tile_activation_mj: f64,
}

impl EnergyModel {
    /// Default ratio between executing a subtask on an ISP and on DRHW.
    pub const DEFAULT_ISP_FACTOR: f64 = 3.0;

    /// Default static energy drawn by one powered tile, in mJ per millisecond
    /// of schedule length.
    pub const DEFAULT_TILE_STATIC_MJ_PER_MS: f64 = 0.1;

    /// Default fixed cost of powering up one tile for a task activation, in
    /// mJ. Together with the static term this makes wider (faster) schedules
    /// more energy-hungry and gives the Pareto curves their second dimension.
    pub const DEFAULT_TILE_ACTIVATION_MJ: f64 = 1.0;

    /// Creates the default energy model.
    pub fn new() -> Self {
        EnergyModel {
            isp_energy_factor: Self::DEFAULT_ISP_FACTOR,
            tile_static_mj_per_ms: Self::DEFAULT_TILE_STATIC_MJ_PER_MS,
            tile_activation_mj: Self::DEFAULT_TILE_ACTIVATION_MJ,
        }
    }

    /// Returns a copy with a different ISP energy factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite or is below 1.0 (an ISP is never more
    /// efficient than dedicated hardware in this model).
    #[must_use]
    pub fn with_isp_factor(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 1.0,
            "isp factor must be >= 1, got {factor}"
        );
        self.isp_energy_factor = factor;
        self
    }

    /// Returns a copy with a different per-tile static energy figure.
    ///
    /// # Panics
    ///
    /// Panics if `mj_per_ms` is negative or not finite.
    #[must_use]
    pub fn with_tile_static_mj_per_ms(mut self, mj_per_ms: f64) -> Self {
        assert!(
            mj_per_ms.is_finite() && mj_per_ms >= 0.0,
            "static energy must be finite and non-negative, got {mj_per_ms}"
        );
        self.tile_static_mj_per_ms = mj_per_ms;
        self
    }

    /// The configured ISP energy factor.
    pub fn isp_factor(&self) -> f64 {
        self.isp_energy_factor
    }

    /// The configured per-tile static energy (mJ per ms of schedule length).
    pub fn tile_static_mj_per_ms(&self) -> f64 {
        self.tile_static_mj_per_ms
    }

    /// Static energy of keeping `tiles` tiles powered for `duration`.
    pub fn static_energy_mj(&self, tiles: usize, duration: drhw_model::Time) -> f64 {
        self.tile_static_mj_per_ms * tiles as f64 * duration.as_millis_f64()
    }

    /// Energy of one schedule: execution energy of the graph, plus the static
    /// energy of the tiles it keeps powered for its whole duration, plus a
    /// fixed activation cost per tile. This is the figure used on the energy
    /// axis of the Pareto curves.
    pub fn schedule_energy_mj(
        &self,
        graph: &SubtaskGraph,
        tiles: usize,
        exec_time: drhw_model::Time,
    ) -> f64 {
        self.graph_execution_energy_mj(graph)
            + self.static_energy_mj(tiles, exec_time)
            + self.tile_activation_mj * tiles as f64
    }

    /// Energy (mJ) of executing one subtask on the given PE class.
    pub fn execution_energy_mj(
        &self,
        graph: &SubtaskGraph,
        id: drhw_model::SubtaskId,
        pe: PeClass,
    ) -> f64 {
        let base = graph.subtask(id).exec_energy_mj();
        match pe {
            PeClass::Drhw => base,
            PeClass::Isp => base * self.isp_energy_factor,
        }
    }

    /// Energy (mJ) of executing an entire graph with every subtask on its
    /// preferred PE class (the common case for the benchmark workloads).
    pub fn graph_execution_energy_mj(&self, graph: &SubtaskGraph) -> f64 {
        graph
            .iter()
            .map(|(id, s)| self.execution_energy_mj(graph, id, s.pe_class()))
            .sum()
    }

    /// Energy (mJ) of performing `loads` configuration loads on the platform.
    pub fn reconfiguration_energy_mj(&self, platform: &Platform, loads: usize) -> f64 {
        platform.reconfig_energy_mj() * loads as f64
    }

    /// Total energy of one task activation: execution plus reconfiguration.
    pub fn activation_energy_mj(
        &self,
        graph: &SubtaskGraph,
        platform: &Platform,
        loads: usize,
    ) -> f64 {
        self.graph_execution_energy_mj(graph) + self.reconfiguration_energy_mj(platform, loads)
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drhw_model::{ConfigId, Subtask, SubtaskId, Time};

    fn graph() -> SubtaskGraph {
        let mut g = SubtaskGraph::new("e");
        g.add_subtask(Subtask::new("hw", Time::from_millis(10), ConfigId::new(0)));
        g.add_subtask(
            Subtask::new("sw", Time::from_millis(10), ConfigId::new(1)).with_pe_class(PeClass::Isp),
        );
        g
    }

    #[test]
    fn isp_execution_costs_more_than_drhw() {
        let g = graph();
        let m = EnergyModel::new();
        let hw = m.execution_energy_mj(&g, SubtaskId::new(0), PeClass::Drhw);
        let sw = m.execution_energy_mj(&g, SubtaskId::new(0), PeClass::Isp);
        assert!((sw / hw - EnergyModel::DEFAULT_ISP_FACTOR).abs() < 1e-9);
    }

    #[test]
    fn graph_energy_uses_each_subtasks_preferred_pe() {
        let g = graph();
        let m = EnergyModel::new();
        // 10 mJ for the DRHW subtask + 30 mJ for the ISP subtask.
        assert!((m.graph_execution_energy_mj(&g) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn reconfiguration_energy_scales_with_load_count() {
        let m = EnergyModel::new();
        let platform = Platform::virtex_like(4)
            .unwrap()
            .with_reconfig_energy_mj(2.5);
        assert!((m.reconfiguration_energy_mj(&platform, 4) - 10.0).abs() < 1e-9);
        let g = graph();
        let total = m.activation_energy_mj(&g, &platform, 2);
        assert!((total - 45.0).abs() < 1e-9);
    }

    #[test]
    fn custom_isp_factor_is_applied() {
        let m = EnergyModel::new().with_isp_factor(5.0);
        assert_eq!(m.isp_factor(), 5.0);
        assert_eq!(EnergyModel::default().isp_factor(), 3.0);
    }

    #[test]
    fn static_energy_scales_with_tiles_and_duration() {
        let m = EnergyModel::new().with_tile_static_mj_per_ms(0.5);
        assert!((m.static_energy_mj(4, Time::from_millis(10)) - 20.0).abs() < 1e-9);
        assert_eq!(m.tile_static_mj_per_ms(), 0.5);
        let g = graph();
        // 40 mJ execution + 2 tiles * 10 ms * 0.5 mJ/ms + 2 tiles * 1 mJ activation.
        assert!((m.schedule_energy_mj(&g, 2, Time::from_millis(10)) - 52.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "static energy must be finite")]
    fn negative_static_energy_is_rejected() {
        let _ = EnergyModel::new().with_tile_static_mj_per_ms(-1.0);
    }

    #[test]
    #[should_panic(expected = "isp factor must be >= 1")]
    fn sub_unity_isp_factor_is_rejected() {
        let _ = EnergyModel::new().with_isp_factor(0.5);
    }
}
