//! The TCM run-time scheduler substrate.
//!
//! At run time, TCM periodically identifies the active scenario of every
//! running task and selects, from the design-time library, the Pareto point
//! that consumes the least energy while still meeting the timing constraints.
//! The selected points — a sequence of task activations with concrete initial
//! schedules — are exactly the input the prefetch flow of Fig. 2 consumes.

use std::collections::BTreeMap;

use drhw_model::{Platform, ScenarioId, TaskId, TaskSet, Time};
use serde::{Deserialize, Serialize};

use crate::design_time::DesignTimeScheduler;
use crate::error::TcmError;
use crate::pareto::{ParetoCurve, ParetoPoint};

/// The design-time artifacts of one task: one Pareto curve per scenario plus
/// the task's real-time constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskArtifacts {
    task: TaskId,
    deadline: Option<Time>,
    curves: BTreeMap<ScenarioId, ParetoCurve>,
}

impl TaskArtifacts {
    /// The task these artifacts belong to.
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// The task's deadline, if any.
    pub fn deadline(&self) -> Option<Time> {
        self.deadline
    }

    /// The Pareto curve of one scenario.
    pub fn curve(&self, scenario: ScenarioId) -> Option<&ParetoCurve> {
        self.curves.get(&scenario)
    }

    /// Iterates over `(scenario, curve)` pairs.
    pub fn curves(&self) -> impl Iterator<Item = (ScenarioId, &ParetoCurve)> + '_ {
        self.curves.iter().map(|(&s, c)| (s, c))
    }
}

/// Everything the design-time phase hands over to the run-time scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignTimeLibrary {
    artifacts: Vec<TaskArtifacts>,
}

impl DesignTimeLibrary {
    /// Runs the design-time scheduler on every scenario of every task of the
    /// set and collects the resulting Pareto curves.
    ///
    /// # Errors
    ///
    /// Returns an error if any scenario graph is invalid.
    pub fn build(
        task_set: &TaskSet,
        platform: &Platform,
        scheduler: &DesignTimeScheduler,
    ) -> Result<Self, TcmError> {
        let mut artifacts = Vec::with_capacity(task_set.len());
        for task in task_set.tasks() {
            let mut curves = BTreeMap::new();
            for scenario in task.scenarios() {
                let curve = scheduler.pareto_curve(scenario.graph(), platform)?;
                curves.insert(scenario.id(), curve);
            }
            artifacts.push(TaskArtifacts {
                task: task.id(),
                deadline: task.deadline(),
                curves,
            });
        }
        Ok(DesignTimeLibrary { artifacts })
    }

    /// The artifacts of every task.
    pub fn artifacts(&self) -> &[TaskArtifacts] {
        &self.artifacts
    }

    /// The artifacts of one task.
    pub fn task(&self, task: TaskId) -> Result<&TaskArtifacts, TcmError> {
        self.artifacts
            .iter()
            .find(|a| a.task == task)
            .ok_or(TcmError::UnknownTask { task })
    }

    /// The Pareto curve of one scenario of one task.
    ///
    /// # Errors
    ///
    /// Returns an error if the task or scenario is unknown.
    pub fn curve(&self, task: TaskId, scenario: ScenarioId) -> Result<&ParetoCurve, TcmError> {
        self.task(task)?
            .curve(scenario)
            .ok_or(TcmError::UnknownScenario { task, scenario })
    }

    /// Total number of stored Pareto points (a proxy for the design-time
    /// memory footprint of the hybrid approach).
    pub fn point_count(&self) -> usize {
        self.artifacts
            .iter()
            .flat_map(|a| a.curves.values())
            .map(ParetoCurve::len)
            .sum()
    }
}

/// One task activation selected by the run-time scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskActivation {
    /// The activated task.
    pub task: TaskId,
    /// The scenario the task is running in.
    pub scenario: ScenarioId,
}

/// The run-time scheduler: selects Pareto points for task activations.
#[derive(Debug, Clone)]
pub struct RuntimeScheduler<'a> {
    library: &'a DesignTimeLibrary,
}

impl<'a> RuntimeScheduler<'a> {
    /// Creates a run-time scheduler over a design-time library.
    pub fn new(library: &'a DesignTimeLibrary) -> Self {
        RuntimeScheduler { library }
    }

    /// The library this scheduler selects from.
    pub fn library(&self) -> &DesignTimeLibrary {
        self.library
    }

    /// Selects the Pareto point for one activation: the most energy-efficient
    /// point of the active scenario that meets the task's deadline and fits on
    /// the available tiles, falling back to the fastest fitting point when the
    /// deadline cannot be met.
    ///
    /// # Errors
    ///
    /// Returns an error if the task or scenario is unknown, or if no point of
    /// the curve fits on the available tiles.
    pub fn select(
        &self,
        activation: TaskActivation,
        available_tiles: usize,
    ) -> Result<&'a ParetoPoint, TcmError> {
        let artifacts = self.library.task(activation.task)?;
        let curve = artifacts
            .curve(activation.scenario)
            .ok_or(TcmError::UnknownScenario {
                task: activation.task,
                scenario: activation.scenario,
            })?;
        curve
            .best_within(artifacts.deadline(), available_tiles)
            .or_else(|| curve.fastest_within_tiles(available_tiles))
            .ok_or(TcmError::NoFeasiblePoint {
                task: activation.task,
                scenario: activation.scenario,
                available_tiles,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drhw_model::{ConfigId, Scenario, Subtask, SubtaskGraph, Task};

    fn chain(name: &str, n: usize, ms: u64, config_base: usize) -> SubtaskGraph {
        let mut g = SubtaskGraph::new(name);
        let ids: Vec<_> = (0..n)
            .map(|i| {
                g.add_subtask(Subtask::new(
                    format!("{name}{i}"),
                    Time::from_millis(ms),
                    ConfigId::new(config_base + i),
                ))
            })
            .collect();
        for w in ids.windows(2) {
            g.add_dependency(w[0], w[1]).unwrap();
        }
        g
    }

    fn parallel(name: &str, n: usize, ms: u64, config_base: usize) -> SubtaskGraph {
        let mut g = SubtaskGraph::new(name);
        for i in 0..n {
            g.add_subtask(Subtask::new(
                format!("{name}{i}"),
                Time::from_millis(ms),
                ConfigId::new(config_base + i),
            ));
        }
        g
    }

    fn library() -> (TaskSet, DesignTimeLibrary, Platform) {
        let t0 = Task::new(
            TaskId::new(0),
            "mpeg",
            vec![
                Scenario::new(ScenarioId::new(0), chain("i", 3, 10, 0)),
                Scenario::new(ScenarioId::new(1), parallel("p", 4, 8, 10)),
            ],
        )
        .unwrap()
        .with_deadline(Time::from_millis(40));
        let t1 = Task::single_scenario(TaskId::new(1), "jpeg", chain("j", 4, 12, 20)).unwrap();
        let set = TaskSet::new("mix", vec![t0, t1]).unwrap();
        let platform = Platform::virtex_like(6).unwrap();
        let lib = DesignTimeLibrary::build(&set, &platform, &DesignTimeScheduler::new()).unwrap();
        (set, lib, platform)
    }

    #[test]
    fn build_covers_every_scenario() {
        let (set, lib, _) = library();
        assert_eq!(lib.artifacts().len(), set.len());
        assert!(lib.curve(TaskId::new(0), ScenarioId::new(0)).is_ok());
        assert!(lib.curve(TaskId::new(0), ScenarioId::new(1)).is_ok());
        assert!(lib.curve(TaskId::new(1), ScenarioId::new(0)).is_ok());
        assert!(lib.point_count() >= 3);
    }

    #[test]
    fn unknown_ids_are_reported() {
        let (_, lib, _) = library();
        assert_eq!(
            lib.curve(TaskId::new(9), ScenarioId::new(0)).unwrap_err(),
            TcmError::UnknownTask {
                task: TaskId::new(9)
            }
        );
        assert_eq!(
            lib.curve(TaskId::new(1), ScenarioId::new(5)).unwrap_err(),
            TcmError::UnknownScenario {
                task: TaskId::new(1),
                scenario: ScenarioId::new(5)
            }
        );
    }

    #[test]
    fn select_prefers_energy_within_the_deadline() {
        let (_, lib, _) = library();
        let rt = RuntimeScheduler::new(&lib);
        let point = rt
            .select(
                TaskActivation {
                    task: TaskId::new(0),
                    scenario: ScenarioId::new(0),
                },
                8,
            )
            .unwrap();
        // The 3-subtask chain has no parallelism: a single tile is both the
        // most efficient and fast enough for the 40 ms deadline.
        assert_eq!(point.tiles_used(), 1);
        assert!(point.exec_time() <= Time::from_millis(40));
    }

    #[test]
    fn select_falls_back_to_the_fastest_fitting_point() {
        let (_, lib, _) = library();
        let rt = RuntimeScheduler::new(&lib);
        // The parallel scenario cannot meet 40 ms... it can (8 ms on 4 tiles or
        // 32 ms on 1 tile); restrict to a single available tile instead and
        // check the selection still succeeds.
        let point = rt
            .select(
                TaskActivation {
                    task: TaskId::new(0),
                    scenario: ScenarioId::new(1),
                },
                1,
            )
            .unwrap();
        assert_eq!(point.tiles_used(), 1);
        // With zero tiles nothing fits.
        let err = rt
            .select(
                TaskActivation {
                    task: TaskId::new(0),
                    scenario: ScenarioId::new(1),
                },
                0,
            )
            .unwrap_err();
        assert!(matches!(err, TcmError::NoFeasiblePoint { .. }));
    }

    #[test]
    fn runtime_scheduler_exposes_its_library() {
        let (_, lib, _) = library();
        let rt = RuntimeScheduler::new(&lib);
        assert_eq!(rt.library().artifacts().len(), 2);
    }
}
