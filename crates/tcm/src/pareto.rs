//! Pareto curves of schedules (execution time versus energy).
//!
//! For every scenario of every task, the TCM design-time scheduler produces a
//! set of schedules; each schedule is better than the others in at least one
//! of the optimised parameters. The run-time scheduler later picks, among the
//! points of the active scenario, the most energy-efficient one that still
//! meets the timing constraints.

use drhw_model::{InitialSchedule, Time};
use serde::{Deserialize, Serialize};

use crate::error::TcmError;

/// One point of a Pareto curve: a concrete assignment/schedule plus the two
/// figures of merit TCM optimises.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    schedule: InitialSchedule,
    exec_time: Time,
    energy_mj: f64,
}

impl ParetoPoint {
    /// Creates a point from a schedule and its metrics.
    ///
    /// # Panics
    ///
    /// Panics if `energy_mj` is negative or not finite.
    pub fn new(schedule: InitialSchedule, exec_time: Time, energy_mj: f64) -> Self {
        assert!(
            energy_mj.is_finite() && energy_mj >= 0.0,
            "energy must be finite and non-negative, got {energy_mj}"
        );
        ParetoPoint {
            schedule,
            exec_time,
            energy_mj,
        }
    }

    /// The reconfiguration-oblivious schedule of this point.
    pub fn schedule(&self) -> &InitialSchedule {
        &self.schedule
    }

    /// Ideal execution time of the schedule (no reconfiguration overhead).
    pub fn exec_time(&self) -> Time {
        self.exec_time
    }

    /// Estimated energy of one activation in millijoule.
    pub fn energy_mj(&self) -> f64 {
        self.energy_mj
    }

    /// Number of DRHW tiles the schedule needs.
    pub fn tiles_used(&self) -> usize {
        self.schedule.slot_count()
    }

    /// Returns `true` if `self` dominates `other` (no worse in both metrics,
    /// strictly better in at least one).
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        let no_worse = self.exec_time <= other.exec_time && self.energy_mj <= other.energy_mj;
        let better = self.exec_time < other.exec_time || self.energy_mj < other.energy_mj;
        no_worse && better
    }
}

/// A Pareto-optimal set of schedules for one scenario, sorted by increasing
/// execution time (and therefore decreasing energy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoCurve {
    points: Vec<ParetoPoint>,
}

impl ParetoCurve {
    /// Builds a curve from candidate points, dropping every dominated point.
    ///
    /// # Errors
    ///
    /// Returns [`TcmError::EmptyCurve`] if `candidates` is empty.
    pub fn from_candidates(candidates: Vec<ParetoPoint>) -> Result<Self, TcmError> {
        if candidates.is_empty() {
            return Err(TcmError::EmptyCurve);
        }
        let mut points: Vec<ParetoPoint> = Vec::new();
        for candidate in candidates {
            if points.iter().any(|p| p.dominates(&candidate)) {
                continue;
            }
            points.retain(|p| !candidate.dominates(p));
            // Identical metric pairs: keep the first (deterministic).
            if !points.iter().any(|p| {
                p.exec_time() == candidate.exec_time() && p.energy_mj() == candidate.energy_mj()
            }) {
                points.push(candidate);
            }
        }
        points.sort_by(|a, b| {
            a.exec_time().cmp(&b.exec_time()).then(
                a.energy_mj()
                    .partial_cmp(&b.energy_mj())
                    .expect("energy is finite"),
            )
        });
        Ok(ParetoCurve { points })
    }

    /// The points of the curve, sorted by increasing execution time.
    pub fn points(&self) -> &[ParetoPoint] {
        &self.points
    }

    /// Number of Pareto points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the curve has no points (never true for a constructed
    /// curve).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The fastest point (smallest execution time).
    pub fn fastest(&self) -> &ParetoPoint {
        &self.points[0]
    }

    /// The most energy-efficient point.
    pub fn most_efficient(&self) -> &ParetoPoint {
        self.points
            .iter()
            .min_by(|a, b| {
                a.energy_mj()
                    .partial_cmp(&b.energy_mj())
                    .expect("energy is finite")
            })
            .expect("curve is never empty")
    }

    /// The most energy-efficient point that meets `deadline` and fits on
    /// `available_tiles`, or `None` if no point qualifies.
    pub fn best_within(
        &self,
        deadline: Option<Time>,
        available_tiles: usize,
    ) -> Option<&ParetoPoint> {
        self.points
            .iter()
            .filter(|p| p.tiles_used() <= available_tiles)
            .filter(|p| deadline.is_none_or(|d| p.exec_time() <= d))
            .min_by(|a, b| {
                a.energy_mj()
                    .partial_cmp(&b.energy_mj())
                    .expect("energy is finite")
            })
    }

    /// The fastest point that fits on `available_tiles`, used as a fallback
    /// when no point meets the deadline.
    pub fn fastest_within_tiles(&self, available_tiles: usize) -> Option<&ParetoPoint> {
        self.points
            .iter()
            .filter(|p| p.tiles_used() <= available_tiles)
            .min_by_key(|p| p.exec_time())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drhw_model::{ConfigId, PeAssignment, Subtask, SubtaskGraph, TileSlot};

    fn schedule_with_slots(slots: usize) -> InitialSchedule {
        let mut g = SubtaskGraph::new("s");
        let ids: Vec<_> = (0..slots)
            .map(|i| {
                g.add_subtask(Subtask::new(
                    format!("s{i}"),
                    Time::from_millis(5),
                    ConfigId::new(i),
                ))
            })
            .collect();
        for w in ids.windows(2) {
            g.add_dependency(w[0], w[1]).unwrap();
        }
        let assignment = (0..slots)
            .map(|i| PeAssignment::Tile(TileSlot::new(i)))
            .collect();
        InitialSchedule::from_assignment(&g, assignment).unwrap()
    }

    fn point(slots: usize, ms: u64, mj: f64) -> ParetoPoint {
        ParetoPoint::new(schedule_with_slots(slots), Time::from_millis(ms), mj)
    }

    #[test]
    fn dominance_is_strict_in_at_least_one_metric() {
        let a = point(1, 10, 5.0);
        let b = point(1, 12, 6.0);
        let c = point(1, 10, 5.0);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&c), "equal points do not dominate each other");
    }

    #[test]
    fn from_candidates_filters_dominated_points() {
        let curve = ParetoCurve::from_candidates(vec![
            point(4, 10, 20.0),
            point(2, 20, 12.0),
            point(3, 15, 25.0), // dominated by the first in energy? no: slower and more energy -> dominated by none? 10<=15 and 20<=25 -> dominated by the first
            point(1, 40, 8.0),
        ])
        .unwrap();
        assert_eq!(curve.len(), 3);
        assert_eq!(curve.fastest().exec_time(), Time::from_millis(10));
        assert!((curve.most_efficient().energy_mj() - 8.0).abs() < 1e-9);
        // Sorted by increasing execution time.
        let times: Vec<Time> = curve.points().iter().map(ParetoPoint::exec_time).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
    }

    #[test]
    fn duplicate_metric_pairs_are_collapsed() {
        let curve =
            ParetoCurve::from_candidates(vec![point(2, 10, 5.0), point(2, 10, 5.0)]).unwrap();
        assert_eq!(curve.len(), 1);
    }

    #[test]
    fn empty_candidate_set_is_an_error() {
        assert_eq!(
            ParetoCurve::from_candidates(vec![]).unwrap_err(),
            TcmError::EmptyCurve
        );
    }

    #[test]
    fn best_within_respects_deadline_and_tiles() {
        let curve = ParetoCurve::from_candidates(vec![
            point(4, 10, 20.0),
            point(2, 20, 12.0),
            point(1, 40, 8.0),
        ])
        .unwrap();
        // Plenty of tiles, 25 ms deadline: the 20 ms / 12 mJ point wins.
        let best = curve.best_within(Some(Time::from_millis(25)), 8).unwrap();
        assert_eq!(best.exec_time(), Time::from_millis(20));
        // Only 1 tile available: the single-slot point is the only option.
        let best = curve.best_within(None, 1).unwrap();
        assert_eq!(best.tiles_used(), 1);
        // Impossible deadline: nothing qualifies.
        assert!(curve.best_within(Some(Time::from_millis(5)), 8).is_none());
        // Fallback: fastest point that fits on two tiles.
        let fallback = curve.fastest_within_tiles(2).unwrap();
        assert_eq!(fallback.exec_time(), Time::from_millis(20));
        assert!(curve.fastest_within_tiles(0).is_none());
    }

    #[test]
    #[should_panic(expected = "energy must be finite")]
    fn negative_energy_is_rejected() {
        let _ = point(1, 10, -3.0);
    }
}
