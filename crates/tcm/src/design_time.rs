//! The TCM design-time scheduler.
//!
//! For every scenario of every task, the design-time scheduler explores the
//! resource allocation space (how many DRHW tiles to give the task) and
//! produces one candidate schedule per allocation with a classic
//! weight-driven list scheduler. The non-dominated candidates form the
//! scenario's [`ParetoCurve`]. These schedules deliberately *neglect the
//! reconfiguration latency* — dealing with the loads is exactly the job of the
//! prefetch module built on top of this flow.

use std::collections::BTreeMap;

use drhw_model::{
    GraphAnalysis, InitialSchedule, IspId, PeAssignment, PeClass, Platform, SubtaskGraph,
    SubtaskId, TileSlot, Time,
};
use serde::{Deserialize, Serialize};

use crate::energy::EnergyModel;
use crate::error::TcmError;
use crate::pareto::{ParetoCurve, ParetoPoint};

/// Weight-driven list scheduler exploring one schedule per tile allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignTimeScheduler {
    energy: EnergyModel,
}

impl DesignTimeScheduler {
    /// Creates a scheduler with the default energy model.
    pub fn new() -> Self {
        DesignTimeScheduler {
            energy: EnergyModel::new(),
        }
    }

    /// Returns a copy using the given energy model.
    #[must_use]
    pub fn with_energy_model(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// The energy model used to annotate Pareto points.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// List-schedules `graph` onto exactly `slots` DRHW tile slots (plus one
    /// ISP for software subtasks), neglecting reconfiguration latency.
    ///
    /// Subtasks become ready once their predecessors are scheduled and are
    /// served by decreasing criticality weight; each ready subtask goes to the
    /// processing element where it can start earliest.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is invalid or `slots` is zero while the
    /// graph contains DRHW subtasks.
    pub fn schedule_on(
        &self,
        graph: &SubtaskGraph,
        slots: usize,
    ) -> Result<InitialSchedule, TcmError> {
        graph.validate()?;
        let needs_drhw = graph.drhw_subtasks().len();
        if slots == 0 && needs_drhw > 0 {
            return Err(TcmError::EmptyCurve);
        }
        let analysis = GraphAnalysis::new(graph)?;
        let n = graph.len();

        let mut finish: Vec<Option<Time>> = vec![None; n];
        let mut remaining_preds: Vec<usize> =
            graph.ids().map(|id| graph.predecessors(id).len()).collect();
        let mut assignment: Vec<PeAssignment> = vec![PeAssignment::Isp(IspId::new(0)); n];
        let mut pe_order: BTreeMap<PeAssignment, Vec<SubtaskId>> = BTreeMap::new();
        let mut slot_free = vec![Time::ZERO; slots.max(1)];
        let mut isp_free = Time::ZERO;
        let mut ready: Vec<SubtaskId> = graph
            .ids()
            .filter(|&id| remaining_preds[id.index()] == 0)
            .collect();
        let mut scheduled = 0usize;

        while scheduled < n {
            // Highest weight first; ties by id keep the result deterministic.
            ready.sort_by(|a, b| {
                analysis
                    .weight(*b)
                    .cmp(&analysis.weight(*a))
                    .then(a.index().cmp(&b.index()))
            });
            let id = ready.remove(0);
            let preds_ready = graph
                .predecessors(id)
                .iter()
                .map(|&p| finish[p.index()].expect("predecessors are scheduled first"))
                .max()
                .unwrap_or(Time::ZERO);
            let (pe, start) = match graph.subtask(id).pe_class() {
                PeClass::Drhw => {
                    // Earliest start wins; among equal starts prefer the slot
                    // that has been busy the longest (packing keeps the number
                    // of distinct slots, and therefore reconfigurations, low).
                    let (slot, &free) = slot_free
                        .iter()
                        .enumerate()
                        .min_by_key(|(i, &f)| (f.max(preds_ready), std::cmp::Reverse(f), *i))
                        .expect("at least one slot exists");
                    slot_free[slot] = free.max(preds_ready) + graph.subtask(id).exec_time();
                    (
                        PeAssignment::Tile(TileSlot::new(slot)),
                        free.max(preds_ready),
                    )
                }
                PeClass::Isp => {
                    let start = isp_free.max(preds_ready);
                    isp_free = start + graph.subtask(id).exec_time();
                    (PeAssignment::Isp(IspId::new(0)), start)
                }
            };
            assignment[id.index()] = pe;
            pe_order.entry(pe).or_default().push(id);
            finish[id.index()] = Some(start + graph.subtask(id).exec_time());
            scheduled += 1;
            for &succ in graph.successors(id) {
                remaining_preds[succ.index()] -= 1;
                if remaining_preds[succ.index()] == 0 {
                    ready.push(succ);
                }
            }
        }

        InitialSchedule::with_order(graph, assignment, pe_order).map_err(TcmError::from)
    }

    /// Builds the Pareto curve of a scenario on the given platform: one
    /// candidate schedule per tile allocation from 1 to
    /// `min(platform tiles, DRHW subtasks)`, dominated candidates removed.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is invalid or no candidate can be built.
    pub fn pareto_curve(
        &self,
        graph: &SubtaskGraph,
        platform: &Platform,
    ) -> Result<ParetoCurve, TcmError> {
        graph.validate()?;
        let drhw = graph.drhw_subtasks().len();
        let max_slots = drhw.min(platform.tile_count()).max(1);
        let mut candidates = Vec::with_capacity(max_slots);
        for slots in 1..=max_slots {
            let schedule = self.schedule_on(graph, slots)?;
            let exec_time = schedule.ideal_timing(graph)?.makespan();
            let energy = self
                .energy
                .schedule_energy_mj(graph, schedule.slot_count(), exec_time);
            candidates.push(ParetoPoint::new(schedule, exec_time, energy));
        }
        ParetoCurve::from_candidates(candidates)
    }
}

impl Default for DesignTimeScheduler {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drhw_model::{ConfigId, Subtask};

    /// Two parallel chains of three subtasks each.
    fn two_chains() -> SubtaskGraph {
        let mut g = SubtaskGraph::new("chains");
        let mut prev: Option<SubtaskId> = None;
        for i in 0..3 {
            let id = g.add_subtask(Subtask::new(
                format!("a{i}"),
                Time::from_millis(10),
                ConfigId::new(i),
            ));
            if let Some(p) = prev {
                g.add_dependency(p, id).unwrap();
            }
            prev = Some(id);
        }
        let mut prev: Option<SubtaskId> = None;
        for i in 0..3 {
            let id = g.add_subtask(Subtask::new(
                format!("b{i}"),
                Time::from_millis(10),
                ConfigId::new(10 + i),
            ));
            if let Some(p) = prev {
                g.add_dependency(p, id).unwrap();
            }
            prev = Some(id);
        }
        g
    }

    #[test]
    fn single_slot_schedule_serialises_everything() {
        let g = two_chains();
        let scheduler = DesignTimeScheduler::new();
        let schedule = scheduler.schedule_on(&g, 1).unwrap();
        assert_eq!(schedule.slot_count(), 1);
        let timed = schedule.ideal_timing(&g).unwrap();
        assert_eq!(timed.makespan(), Time::from_millis(60));
    }

    #[test]
    fn two_slots_run_the_chains_in_parallel() {
        let g = two_chains();
        let scheduler = DesignTimeScheduler::new();
        let schedule = scheduler.schedule_on(&g, 2).unwrap();
        assert_eq!(schedule.slot_count(), 2);
        let timed = schedule.ideal_timing(&g).unwrap();
        assert_eq!(timed.makespan(), Time::from_millis(30));
    }

    #[test]
    fn extra_slots_do_not_help_beyond_the_graph_parallelism() {
        let g = two_chains();
        let scheduler = DesignTimeScheduler::new();
        let four = scheduler.schedule_on(&g, 4).unwrap();
        let timed = four.ideal_timing(&g).unwrap();
        assert_eq!(timed.makespan(), Time::from_millis(30));
        // The list scheduler only occupies as many slots as it profits from.
        assert!(four.slot_count() <= 4);
    }

    #[test]
    fn isp_subtasks_go_to_the_isp() {
        let mut g = two_chains();
        let control = g.add_subtask(
            Subtask::new("control", Time::from_millis(2), ConfigId::new(99))
                .with_pe_class(PeClass::Isp),
        );
        let scheduler = DesignTimeScheduler::new();
        let schedule = scheduler.schedule_on(&g, 2).unwrap();
        assert_eq!(
            schedule.assignment(control),
            PeAssignment::Isp(IspId::new(0))
        );
    }

    #[test]
    fn pareto_curve_trades_time_for_energy() {
        let g = two_chains();
        let platform = Platform::virtex_like(8).unwrap();
        let curve = DesignTimeScheduler::new()
            .pareto_curve(&g, &platform)
            .unwrap();
        assert!(
            curve.len() >= 2,
            "expected a real trade-off, got {} points",
            curve.len()
        );
        assert_eq!(curve.fastest().exec_time(), Time::from_millis(30));
        // The most efficient point uses fewer tiles than the fastest one.
        assert!(curve.most_efficient().tiles_used() < curve.fastest().tiles_used().max(2));
        // Every point respects the platform's tile budget.
        assert!(curve
            .points()
            .iter()
            .all(|p| p.tiles_used() <= platform.tile_count()));
    }

    #[test]
    fn zero_slots_with_drhw_work_is_an_error() {
        let g = two_chains();
        assert!(DesignTimeScheduler::new().schedule_on(&g, 0).is_err());
    }

    #[test]
    fn schedules_are_valid_initial_schedules() {
        // The produced schedule must satisfy the model's own consistency
        // checks (per-PE order consistent with precedence).
        let g = two_chains();
        let schedule = DesignTimeScheduler::new().schedule_on(&g, 3).unwrap();
        assert!(schedule.ideal_timing(&g).is_ok());
        for id in g.ids() {
            assert_eq!(
                schedule.assignment(id).class(),
                g.subtask(id).pe_class(),
                "PE class must match for {id}"
            );
        }
    }
}
