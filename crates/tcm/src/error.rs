//! Errors produced by the TCM scheduling substrate.

use std::error::Error;
use std::fmt;

use drhw_model::{ModelError, ScenarioId, TaskId};

/// Errors returned by the TCM design-time and run-time schedulers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TcmError {
    /// The underlying model is invalid.
    Model(ModelError),
    /// A task id is unknown to the design-time library.
    UnknownTask {
        /// The offending task.
        task: TaskId,
    },
    /// A scenario id is unknown for the given task.
    UnknownScenario {
        /// The task being looked up.
        task: TaskId,
        /// The offending scenario.
        scenario: ScenarioId,
    },
    /// No Pareto point of the scenario fits within the given resource budget.
    NoFeasiblePoint {
        /// The task being scheduled.
        task: TaskId,
        /// The scenario being scheduled.
        scenario: ScenarioId,
        /// The number of tiles that were available.
        available_tiles: usize,
    },
    /// A Pareto curve would be empty (no schedules could be produced).
    EmptyCurve,
}

impl fmt::Display for TcmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TcmError::Model(e) => write!(f, "invalid model: {e}"),
            TcmError::UnknownTask { task } => write!(f, "unknown task {task}"),
            TcmError::UnknownScenario { task, scenario } => {
                write!(f, "task {task} has no scenario {scenario}")
            }
            TcmError::NoFeasiblePoint {
                task,
                scenario,
                available_tiles,
            } => write!(
                f,
                "no pareto point of {task}/{scenario} fits on {available_tiles} tiles"
            ),
            TcmError::EmptyCurve => write!(f, "pareto curve would contain no schedules"),
        }
    }
}

impl Error for TcmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TcmError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for TcmError {
    fn from(e: ModelError) -> Self {
        TcmError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_ids() {
        let e = TcmError::UnknownScenario {
            task: TaskId::new(3),
            scenario: ScenarioId::new(1),
        };
        assert!(e.to_string().contains("task3"));
        assert!(e.to_string().contains("sc1"));
        let e = TcmError::NoFeasiblePoint {
            task: TaskId::new(0),
            scenario: ScenarioId::new(0),
            available_tiles: 2,
        };
        assert!(e.to_string().contains("2 tiles"));
    }

    #[test]
    fn wraps_model_errors() {
        let e = TcmError::from(ModelError::EmptyGraph);
        assert!(Error::source(&e).is_some());
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<TcmError>();
    }
}
