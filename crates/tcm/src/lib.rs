//! # drhw-tcm
//!
//! A compact re-implementation of the Task Concurrency Management (TCM)
//! hybrid design-time/run-time scheduling substrate the DATE 2005 hybrid
//! prefetch paper builds on.
//!
//! The crate covers the parts of TCM the prefetch flow needs:
//!
//! * [`DesignTimeScheduler`] — a weight-driven list scheduler that explores
//!   the tile-allocation space of every scenario and produces
//!   reconfiguration-oblivious initial schedules;
//! * [`EnergyModel`] / [`ParetoCurve`] — the time/energy trade-off the
//!   design-time exploration optimises;
//! * [`DesignTimeLibrary`] / [`RuntimeScheduler`] — the run-time selection of
//!   the most energy-efficient Pareto point that still meets the deadline,
//!   producing the sequence of task activations the prefetch modules consume.
//!
//! # Example
//!
//! ```
//! use drhw_model::{ConfigId, Platform, ScenarioId, Subtask, SubtaskGraph, Task, TaskId, TaskSet,
//!     Time};
//! use drhw_tcm::{DesignTimeLibrary, DesignTimeScheduler, RuntimeScheduler, TaskActivation};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut graph = SubtaskGraph::new("filter");
//! let a = graph.add_subtask(Subtask::new("a", Time::from_millis(10), ConfigId::new(0)));
//! let b = graph.add_subtask(Subtask::new("b", Time::from_millis(10), ConfigId::new(1)));
//! graph.add_dependency(a, b)?;
//! let task = Task::single_scenario(TaskId::new(0), "filter", graph)?;
//! let set = TaskSet::new("app", vec![task])?;
//! let platform = Platform::virtex_like(4)?;
//!
//! let library = DesignTimeLibrary::build(&set, &platform, &DesignTimeScheduler::new())?;
//! let runtime = RuntimeScheduler::new(&library);
//! let point = runtime.select(
//!     TaskActivation { task: TaskId::new(0), scenario: ScenarioId::new(0) },
//!     platform.tile_count(),
//! )?;
//! assert_eq!(point.exec_time(), Time::from_millis(20));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod design_time;
mod energy;
mod error;
mod pareto;
mod runtime;

pub use design_time::DesignTimeScheduler;
pub use energy::EnergyModel;
pub use error::TcmError;
pub use pareto::{ParetoCurve, ParetoPoint};
pub use runtime::{DesignTimeLibrary, RuntimeScheduler, TaskActivation, TaskArtifacts};
