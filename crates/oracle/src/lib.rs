//! # drhw-oracle
//!
//! A differential oracle for the DRHW prefetch workspace, in two halves:
//!
//! * [`reference`] — a slow-but-obviously-correct **reference simulator**: a
//!   straight-line, event-driven re-implementation of execution and
//!   reconfiguration-overhead accounting that shares **only `drhw-model`
//!   types** with the fast path (no `IterationPlan`, no precomputed
//!   artifacts, no chunked worker pool), so it can arbitrate disagreements
//!   for any `(policy, workload, tiles, seed)` tuple;
//! * [`diff`] — the **differential harness**: a pinned fuzz corpus over the
//!   generated DAG families of `drhw-workloads::fuzz`, swept across all five
//!   policies, comparing the engine against the reference bit for bit
//!   (per-iteration outcomes *and* aggregate reports, single-threaded and
//!   multi-threaded), with first divergences shrunk down to the smallest
//!   failing task set.
//!
//! The corpus size is controlled by the `DRHW_FUZZ_CASES` environment
//! variable (see [`diff::corpus_cases_from_env`]); the corpus itself is
//! derived from a pinned master seed so every run, local or CI, sweeps the
//! same cases unless the knob is turned.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod diff;
pub mod reference;

pub use diff::{
    corpus_cases_from_env, pinned_corpus, run_case, run_corpus, CaseOutcome, DiffCase, Divergence,
};
pub use reference::{
    OracleConfig, OracleError, PointSelectionRule, ReferenceOutcome, ReferencePolicy,
    ReferenceReport, ReferenceSimulator, ReplacementRule, ScenarioRule,
};
