//! The straight-line reference simulator.
//!
//! This module is the trusted half of the differential oracle: an
//! **independent, event-driven re-implementation** of the DATE 2005 platform
//! semantics — execution timing, the single serialised reconfiguration port,
//! configuration residency, replacement, the five prefetch policies and the
//! TCM design-time schedule selection. It deliberately shares **only
//! `drhw-model` types** with the fast path (`drhw-sim`, `drhw-prefetch`,
//! `drhw-tcm`): no `IterationPlan`, no precomputed artifacts, no chunked
//! worker pool. Every task activation recomputes everything from first
//! principles, one iteration after another, in plain program order.
//!
//! The price is speed — the reference recomputes per activation what the
//! engine caches per plan — and the payoff is arbitration power: when the
//! two sides disagree on any `(policy, workload, tiles, seed)` tuple, the
//! straight-line code is short enough to audit by hand.
//!
//! ## Event model
//!
//! One iteration simulates a sequence of task activations. For each
//! activation the reference:
//!
//! 1. synthesises the initial schedule the TCM layer would select
//!    (fully-parallel point, fastest fitting Pareto point, or the
//!    energy-aware selection — [`PointSelectionRule`]);
//! 2. maps abstract tile slots onto physical tiles with the configured
//!    replacement rule, protecting configurations upcoming activations need;
//! 3. derives the resident set (configurations left by earlier activations)
//!    and the set of loads the activation still needs;
//! 4. replays the platform timing rules: a subtask starts when its
//!    predecessors and the previous subtask on its PE have finished **and**
//!    its configuration is resident; a tile may only be reconfigured once its
//!    previous occupant has finished; the port performs one load at a time,
//!    choosing the next one by the active policy's rule;
//! 5. commits the activation's effect on the tiles and on the inter-task
//!    port-idle window.
//!
//! Tile state persists across the iterations of one *chunk*
//! ([`OracleConfig::chunk_size`]) and resets at chunk boundaries, mirroring
//! the documented semantics of the batched engine, so the two sides simulate
//! the same physical story.

use std::collections::{BTreeMap, BTreeSet};

use drhw_model::{
    ConfigId, GraphAnalysis, InitialSchedule, IspId, PeAssignment, PeClass, Platform, ScenarioId,
    SubtaskGraph, SubtaskId, Task, TaskId, TaskSet, TileSlot, Time,
};

/// Errors raised by the reference simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleError(String);

impl OracleError {
    fn new(message: impl Into<String>) -> Self {
        OracleError(message.into())
    }
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "oracle: {}", self.0)
    }
}

impl std::error::Error for OracleError {}

// ---------------------------------------------------------------------------
// Deterministic randomness (independent SplitMix64 implementation).
// ---------------------------------------------------------------------------

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// One SplitMix64 output step (bijective avalanche mix).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace's pseudo-random stream: SplitMix64 seeded directly with the
/// per-iteration seed. Re-implemented here so the oracle depends on nobody
/// else's generator.
struct Stream {
    state: u64,
}

impl Stream {
    fn seeded(seed: u64) -> Self {
        Stream { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        let out = splitmix64(self.state);
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        out
    }

    /// Uniform in `[0, 1)` from 53 mantissa bits.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn bernoulli(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Uniform in `start..end` (half-open).
    fn range(&mut self, start: usize, end: usize) -> usize {
        let span = (end - start) as u64;
        start + (self.next_u64() % span) as usize
    }

    /// Uniform in `0..=max` (inclusive).
    fn range_inclusive_zero(&mut self, max: usize) -> usize {
        (self.next_u64() % (max as u64 + 1)) as usize
    }

    /// Fisher–Yates shuffle, identical to the workspace's slice shuffle.
    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_inclusive_zero(i);
            items.swap(i, j);
        }
    }
}

// ---------------------------------------------------------------------------
// Configuration.
// ---------------------------------------------------------------------------

/// The five prefetch policies, named independently of the fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ReferencePolicy {
    /// Configurations are loaded on demand, first-come first-served.
    NoPrefetch,
    /// The optimal load order fixed at design time; no reuse.
    DesignTimeOnly,
    /// The run-time list-scheduling heuristic plus reuse/replacement.
    RunTime,
    /// The run-time heuristic plus the inter-task window optimisation.
    RunTimeInterTask,
    /// The hybrid design-time/run-time heuristic (with the window).
    Hybrid,
}

impl ReferencePolicy {
    /// Every policy, in the order the paper introduces them.
    pub const ALL: [ReferencePolicy; 5] = [
        ReferencePolicy::NoPrefetch,
        ReferencePolicy::DesignTimeOnly,
        ReferencePolicy::RunTime,
        ReferencePolicy::RunTimeInterTask,
        ReferencePolicy::Hybrid,
    ];

    fn exploits_reuse(self) -> bool {
        matches!(
            self,
            ReferencePolicy::RunTime | ReferencePolicy::RunTimeInterTask | ReferencePolicy::Hybrid
        )
    }
}

impl std::fmt::Display for ReferencePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ReferencePolicy::NoPrefetch => "no-prefetch",
            ReferencePolicy::DesignTimeOnly => "design-time-prefetch",
            ReferencePolicy::RunTime => "run-time",
            ReferencePolicy::RunTimeInterTask => "run-time+inter-task",
            ReferencePolicy::Hybrid => "hybrid",
        };
        f.write_str(name)
    }
}

/// How physical tiles are chosen for the abstract slots of a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementRule {
    /// Match slots to tiles already holding their first configuration, then
    /// evict unwanted, unprotected, least-recently-used tiles.
    #[default]
    ReuseAware,
    /// Always evict the least-recently-used tiles.
    LeastRecentlyUsed,
    /// Slot *i* on tile *i*.
    Direct,
}

/// How the initial schedule of an activation is selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PointSelectionRule {
    /// Fully parallel when it fits, else the fastest fitting Pareto point.
    #[default]
    FullyParallel,
    /// Always the fastest Pareto point that fits.
    Fastest,
    /// The most energy-efficient point meeting the deadline (TCM behaviour).
    EnergyAware,
}

/// How scenarios are chosen per activation.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ScenarioRule {
    /// Independent weighted selection per task.
    #[default]
    Independent,
    /// One combination drawn per iteration; tasks missing from it run their
    /// first scenario.
    Correlated(Vec<BTreeMap<TaskId, ScenarioId>>),
}

/// Parameters of one reference simulation (mirrors the semantic knobs of the
/// engine's configuration, without sharing its type).
#[derive(Debug, Clone, PartialEq)]
pub struct OracleConfig {
    /// Number of iterations to simulate.
    pub iterations: usize,
    /// Master seed; iteration `i` derives its own stream from it.
    pub seed: u64,
    /// Probability that each task is activated in an iteration.
    pub task_inclusion_probability: f64,
    /// Replacement rule for slot-to-tile mapping.
    pub replacement: ReplacementRule,
    /// Initial-schedule selection rule.
    pub point_selection: PointSelectionRule,
    /// Scenario selection rule.
    pub scenario_rule: ScenarioRule,
    /// Iterations per chunk: tile state persists within a chunk and resets at
    /// chunk boundaries.
    pub chunk_size: usize,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            iterations: 1000,
            seed: 2005,
            task_inclusion_probability: 0.75,
            replacement: ReplacementRule::ReuseAware,
            point_selection: PointSelectionRule::FullyParallel,
            scenario_rule: ScenarioRule::Independent,
            chunk_size: 32,
        }
    }
}

impl OracleConfig {
    fn validate(&self) -> Result<(), OracleError> {
        if self.iterations == 0 {
            return Err(OracleError::new("at least one iteration is required"));
        }
        if !(0.0..=1.0).contains(&self.task_inclusion_probability)
            || !self.task_inclusion_probability.is_finite()
        {
            return Err(OracleError::new("inclusion probability outside [0, 1]"));
        }
        if self.chunk_size == 0 {
            return Err(OracleError::new("chunk size must be at least 1"));
        }
        if matches!(&self.scenario_rule, ScenarioRule::Correlated(c) if c.is_empty()) {
            return Err(OracleError::new("correlated rule needs a combination"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Outcomes.
// ---------------------------------------------------------------------------

/// What one simulated iteration contributed, field-compatible with the
/// engine's per-iteration outcome so the differential harness can compare
/// them member by member.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReferenceOutcome {
    /// Task activations simulated this iteration.
    pub activations: usize,
    /// Total ideal (zero-latency) execution time.
    pub ideal: Time,
    /// Reconfiguration penalty left exposed.
    pub penalty: Time,
    /// Configuration loads performed.
    pub loads_performed: usize,
    /// Stored loads cancelled thanks to reuse (hybrid only).
    pub loads_cancelled: usize,
    /// DRHW subtask executions simulated.
    pub drhw_subtasks_executed: usize,
    /// Subtask executions that reused a resident configuration.
    pub reused_subtasks: usize,
    /// Reconfiguration energy in millijoule.
    pub reconfiguration_energy_mj: f64,
}

/// Aggregate of a whole reference run (sum of the iteration outcomes, in
/// iteration order so the floating-point energy total is reproducible).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReferenceReport {
    /// Task activations simulated.
    pub activations: usize,
    /// Total ideal execution time.
    pub ideal_total: Time,
    /// Total reconfiguration penalty.
    pub penalty_total: Time,
    /// Configuration loads performed.
    pub loads_performed: usize,
    /// Stored loads cancelled.
    pub loads_cancelled: usize,
    /// DRHW subtask executions simulated.
    pub drhw_subtasks_executed: usize,
    /// Executions that reused a resident configuration.
    pub reused_subtasks: usize,
    /// Total reconfiguration energy in millijoule.
    pub reconfiguration_energy_mj: f64,
}

impl ReferenceReport {
    /// Sums iteration outcomes in order.
    ///
    /// Integer fields are exact under any grouping; the floating-point
    /// energy total of this straight fold can differ in the last ULP from a
    /// chunk-folded engine report when per-iteration energies are not
    /// exactly representable — use
    /// [`from_outcomes_chunked`](Self::from_outcomes_chunked) when comparing
    /// against the batched engine.
    pub fn from_outcomes(outcomes: &[ReferenceOutcome]) -> Self {
        let mut report = ReferenceReport::default();
        for outcome in outcomes {
            report.absorb(outcome);
        }
        report
    }

    /// Sums iteration outcomes the way the batched engine does: one partial
    /// sum per chunk of `chunk_size` consecutive iterations, partials merged
    /// in chunk order. Floating-point addition is not associative, so this
    /// grouping — not a straight left fold — is what reproduces the engine's
    /// energy total bit for bit for arbitrary energy values.
    pub fn from_outcomes_chunked(outcomes: &[ReferenceOutcome], chunk_size: usize) -> Self {
        let mut report = ReferenceReport::default();
        for chunk in outcomes.chunks(chunk_size.max(1)) {
            let partial = ReferenceReport::from_outcomes(chunk);
            report.activations += partial.activations;
            report.ideal_total += partial.ideal_total;
            report.penalty_total += partial.penalty_total;
            report.loads_performed += partial.loads_performed;
            report.loads_cancelled += partial.loads_cancelled;
            report.drhw_subtasks_executed += partial.drhw_subtasks_executed;
            report.reused_subtasks += partial.reused_subtasks;
            report.reconfiguration_energy_mj += partial.reconfiguration_energy_mj;
        }
        report
    }

    fn absorb(&mut self, outcome: &ReferenceOutcome) {
        self.activations += outcome.activations;
        self.ideal_total += outcome.ideal;
        self.penalty_total += outcome.penalty;
        self.loads_performed += outcome.loads_performed;
        self.loads_cancelled += outcome.loads_cancelled;
        self.drhw_subtasks_executed += outcome.drhw_subtasks_executed;
        self.reused_subtasks += outcome.reused_subtasks;
        self.reconfiguration_energy_mj += outcome.reconfiguration_energy_mj;
    }
}

// ---------------------------------------------------------------------------
// Tile state.
// ---------------------------------------------------------------------------

/// What every physical tile holds, plus LRU timestamps.
#[derive(Debug, Clone)]
struct Tiles {
    configs: Vec<Option<ConfigId>>,
    last_used: Vec<Time>,
}

impl Tiles {
    fn cold(count: usize) -> Self {
        Tiles {
            configs: vec![None; count],
            last_used: vec![Time::ZERO; count],
        }
    }

    fn record_load(&mut self, tile: usize, config: ConfigId, now: Time) {
        self.configs[tile] = Some(config);
        self.last_used[tile] = self.last_used[tile].max(now);
    }
}

/// Dense slot → physical-tile mapping.
type Mapping = Vec<usize>;

/// The configuration each slot wants to find already loaded: the one of its
/// first DRHW subtask.
fn desired_configs(graph: &SubtaskGraph, schedule: &InitialSchedule) -> Vec<Option<ConfigId>> {
    (0..schedule.slot_count())
        .map(|s| {
            schedule
                .first_on_slot(TileSlot::new(s))
                .and_then(|id| graph.required_config(id))
        })
        .collect()
}

fn assign_tiles(
    graph: &SubtaskGraph,
    schedule: &InitialSchedule,
    tiles: &Tiles,
    rule: ReplacementRule,
    protected: &BTreeSet<ConfigId>,
) -> Result<Mapping, OracleError> {
    let slots = schedule.slot_count();
    if slots > tiles.configs.len() {
        return Err(OracleError::new(format!(
            "schedule needs {slots} slots but the platform has {} tiles",
            tiles.configs.len()
        )));
    }
    Ok(match rule {
        ReplacementRule::Direct => (0..slots).collect(),
        ReplacementRule::LeastRecentlyUsed => {
            let mut order: Vec<usize> = (0..tiles.configs.len()).collect();
            order.sort_by_key(|&t| (tiles.last_used[t], t));
            order.truncate(slots);
            order
        }
        ReplacementRule::ReuseAware => {
            let desired = desired_configs(graph, schedule);
            let mut assigned: Vec<Option<usize>> = vec![None; slots];
            let mut taken = vec![false; tiles.configs.len()];
            // Pass 1: slots whose first configuration is already resident.
            for (slot, wanted) in desired.iter().enumerate() {
                let Some(config) = wanted else { continue };
                if let Some(tile) = (0..tiles.configs.len())
                    .find(|&t| tiles.configs[t] == Some(*config) && !taken[t])
                {
                    assigned[slot] = Some(tile);
                    taken[tile] = true;
                }
            }
            // Pass 2: evict tiles nobody wants — neither this task nor the
            // protected configurations of upcoming tasks — oldest first.
            let wanted: Vec<ConfigId> = desired.iter().flatten().copied().collect();
            let mut free: Vec<usize> = (0..tiles.configs.len()).filter(|&t| !taken[t]).collect();
            free.sort_by_key(|&t| {
                let holds_wanted = tiles.configs[t]
                    .map(|c| wanted.contains(&c))
                    .unwrap_or(false);
                let holds_protected = tiles.configs[t]
                    .map(|c| protected.contains(&c))
                    .unwrap_or(false);
                (holds_wanted, holds_protected, tiles.last_used[t], t)
            });
            let mut free = free.into_iter();
            for slot_tile in assigned.iter_mut() {
                if slot_tile.is_none() {
                    *slot_tile = free.next();
                }
            }
            assigned
                .into_iter()
                .map(|t| t.expect("slot count checked against tile count"))
                .collect()
        }
    })
}

/// Which subtasks of the schedule find their configuration already resident
/// on the tile their slot is mapped to (only the first occupant of a slot can
/// profit from what a previous task left there).
fn resident_subtasks(
    graph: &SubtaskGraph,
    schedule: &InitialSchedule,
    mapping: &Mapping,
    tiles: &Tiles,
) -> BTreeSet<SubtaskId> {
    let mut resident = BTreeSet::new();
    for slot in 0..schedule.slot_count() {
        let Some(first) = schedule.first_on_slot(TileSlot::new(slot)) else {
            continue;
        };
        let Some(required) = graph.required_config(first) else {
            continue;
        };
        if slot < mapping.len() && tiles.configs[mapping[slot]] == Some(required) {
            resident.insert(first);
        }
    }
    resident
}

/// Commits an executed activation: each slot's tile ends up holding the
/// configuration of the last DRHW subtask executed on it.
fn commit_contents(
    graph: &SubtaskGraph,
    schedule: &InitialSchedule,
    mapping: &Mapping,
    tiles: &mut Tiles,
    now: Time,
) {
    for (slot, &tile) in mapping.iter().enumerate() {
        let on_slot = schedule.subtasks_on(PeAssignment::Tile(TileSlot::new(slot)));
        let last_config = on_slot
            .iter()
            .rev()
            .find_map(|&id| graph.required_config(id));
        if let Some(config) = last_config {
            tiles.record_load(tile, config, now);
        }
    }
}

// ---------------------------------------------------------------------------
// The prefetch timing problem.
// ---------------------------------------------------------------------------

/// One timing problem: a scheduled graph plus which subtasks still need their
/// configuration loaded.
struct TimingProblem<'a> {
    graph: &'a SubtaskGraph,
    schedule: &'a InitialSchedule,
    latency: Time,
    weights: Vec<Time>,
    topo: Vec<SubtaskId>,
    needs_load: Vec<bool>,
    ideal_makespan: Time,
    earliest_exec_start: Time,
    earliest_port_start: Time,
}

impl<'a> TimingProblem<'a> {
    fn new(
        graph: &'a SubtaskGraph,
        schedule: &'a InitialSchedule,
        platform: &Platform,
        resident: &BTreeSet<SubtaskId>,
    ) -> Result<Self, OracleError> {
        if schedule.slot_count() > platform.tile_count() {
            return Err(OracleError::new(format!(
                "schedule needs {} slots but the platform has {} tiles",
                schedule.slot_count(),
                platform.tile_count()
            )));
        }
        let analysis = GraphAnalysis::new(graph)
            .map_err(|e| OracleError::new(format!("invalid graph: {e}")))?;
        let weights = graph.ids().map(|id| analysis.weight(id)).collect();
        let topo = schedule
            .combined_topological_order(graph)
            .map_err(|e| OracleError::new(format!("inconsistent schedule: {e}")))?;
        let ideal_makespan = schedule
            .ideal_timing(graph)
            .map_err(|e| OracleError::new(format!("untimeable schedule: {e}")))?
            .makespan();
        let needs_load = compute_needs_load(graph, schedule, resident);
        Ok(TimingProblem {
            graph,
            schedule,
            latency: platform.reconfig_latency(),
            weights,
            topo,
            needs_load,
            ideal_makespan,
            earliest_exec_start: Time::ZERO,
            earliest_port_start: Time::ZERO,
        })
    }

    fn with_offsets(mut self, exec: Time, port: Time) -> Self {
        self.earliest_exec_start = exec;
        self.earliest_port_start = port;
        self
    }

    fn weight(&self, id: SubtaskId) -> Time {
        self.weights[id.index()]
    }

    /// Loads in subtask-id order.
    fn loads(&self) -> Vec<SubtaskId> {
        self.graph
            .ids()
            .filter(|id| self.needs_load[id.index()])
            .collect()
    }

    /// Loads ordered by decreasing criticality weight (ties by id).
    fn loads_by_weight_desc(&self) -> Vec<SubtaskId> {
        let mut loads = self.loads();
        loads.sort_by(|a, b| {
            self.weight(*b)
                .cmp(&self.weight(*a))
                .then(a.index().cmp(&b.index()))
        });
        loads
    }

    /// A copy where only `subset` of the loads still costs anything (the
    /// optimistic relaxation used by the branch & bound lower bound).
    fn restricted_to(&self, subset: &BTreeSet<SubtaskId>) -> TimingProblem<'a> {
        let mut needs_load = self.needs_load.clone();
        for (index, flag) in needs_load.iter_mut().enumerate() {
            if *flag && !subset.contains(&SubtaskId::new(index)) {
                *flag = false;
            }
        }
        TimingProblem {
            graph: self.graph,
            schedule: self.schedule,
            latency: self.latency,
            weights: self.weights.clone(),
            topo: self.topo.clone(),
            needs_load,
            ideal_makespan: self.ideal_makespan,
            earliest_exec_start: self.earliest_exec_start,
            earliest_port_start: self.earliest_port_start,
        }
    }
}

/// Which subtasks need a configuration load: everything on DRHW except
/// intra-task reuse (same configuration as the previous occupant of the
/// slot) and externally resident configurations that are still intact when
/// the subtask runs.
fn compute_needs_load(
    graph: &SubtaskGraph,
    schedule: &InitialSchedule,
    resident: &BTreeSet<SubtaskId>,
) -> Vec<bool> {
    let mut needs = vec![false; graph.len()];
    for slot in 0..schedule.slot_count() {
        let mut current: Option<ConfigId> = None;
        let on_slot = schedule.subtasks_on(PeAssignment::Tile(TileSlot::new(slot)));
        for (position, &id) in on_slot.iter().enumerate() {
            let Some(required) = graph.required_config(id) else {
                continue;
            };
            let externally_resident = position == 0 && resident.contains(&id);
            let later_resident = position > 0 && resident.contains(&id) && current.is_none();
            if Some(required) == current || externally_resident || later_resident {
                current = Some(required);
                continue;
            }
            needs[id.index()] = true;
            current = Some(required);
        }
    }
    needs
}

// ---------------------------------------------------------------------------
// The timing engine.
// ---------------------------------------------------------------------------

/// How the port chooses its next load.
enum PortRule<'o> {
    FixedOrder(&'o [SubtaskId]),
    ListByWeight,
    OnDemand,
}

/// The result of timing one activation under one port rule.
struct Timing {
    load_order: Vec<SubtaskId>,
    /// Stall directly attributable to waiting for the subtask's own load.
    load_delays: Vec<Time>,
    exec_makespan: Time,
    port_busy_until: Time,
    penalty: Time,
}

impl Timing {
    fn trailing_port_idle(&self) -> Time {
        self.exec_makespan.saturating_sub(self.port_busy_until)
    }

    fn delayed_subtasks(&self) -> Vec<SubtaskId> {
        self.load_delays
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.is_zero())
            .map(|(i, _)| SubtaskId::new(i))
            .collect()
    }
}

/// Replays the platform timing rules for one activation. Progress alternates
/// between scheduling every execution whose inputs are settled and letting
/// the port start (at most) one more load; the alternation reaches a fixed
/// point exactly when every execution is timed and every load performed.
fn run_timing(problem: &TimingProblem<'_>, rule: PortRule<'_>) -> Result<Timing, OracleError> {
    let graph = problem.graph;
    let n = graph.len();
    let mut exec_start: Vec<Option<Time>> = vec![None; n];
    let mut exec_finish: Vec<Option<Time>> = vec![None; n];
    let mut ready_without_load: Vec<Time> = vec![Time::ZERO; n];
    let mut loaded_at: Vec<Option<Time>> = vec![None; n];
    let mut pending: Vec<SubtaskId> = problem.loads();
    let mut performed: Vec<SubtaskId> = Vec::with_capacity(pending.len());
    let mut port_free = problem.earliest_port_start;
    let mut port_busy_until = Time::ZERO;
    let mut any_load = false;
    let mut fixed_cursor = 0usize;
    let mut remaining_execs = n;

    // Earliest instant a subtask could start, ignoring its own load; `None`
    // while a dependency is untimed.
    let exec_ready = |exec_finish: &[Option<Time>], id: SubtaskId| -> Option<Time> {
        let mut ready = problem.earliest_exec_start;
        for &p in graph.predecessors(id) {
            ready = ready.max(exec_finish[p.index()]?);
        }
        if let Some(prev) = problem.schedule.predecessor_on_pe(id) {
            ready = ready.max(exec_finish[prev.index()]?);
        }
        Some(ready)
    };
    // Earliest instant the tile of `id` accepts a load (previous occupant
    // done); `None` while that occupant is untimed.
    let tile_available = |exec_finish: &[Option<Time>], id: SubtaskId| -> Option<Time> {
        match problem.schedule.predecessor_on_pe(id) {
            Some(prev) => exec_finish[prev.index()],
            None => Some(Time::ZERO),
        }
    };

    while remaining_execs > 0 || !pending.is_empty() {
        let mut progress = false;

        for &id in &problem.topo {
            if exec_finish[id.index()].is_some() {
                continue;
            }
            let Some(ready) = exec_ready(&exec_finish, id) else {
                continue;
            };
            if problem.needs_load[id.index()] && loaded_at[id.index()].is_none() {
                ready_without_load[id.index()] = ready;
                continue;
            }
            let start = match loaded_at[id.index()] {
                Some(resident) => ready.max(resident),
                None => ready,
            };
            ready_without_load[id.index()] = ready;
            exec_start[id.index()] = Some(start);
            exec_finish[id.index()] = Some(start + graph.subtask(id).exec_time());
            remaining_execs -= 1;
            progress = true;
        }

        if !pending.is_empty() {
            let pick: Option<(SubtaskId, Time)> = match &rule {
                PortRule::FixedOrder(order) => {
                    while fixed_cursor < order.len() && !pending.contains(&order[fixed_cursor]) {
                        fixed_cursor += 1;
                    }
                    order
                        .get(fixed_cursor)
                        .and_then(|&next| tile_available(&exec_finish, next).map(|t| (next, t)))
                }
                PortRule::ListByWeight => {
                    let known: Vec<(SubtaskId, Time)> = pending
                        .iter()
                        .filter_map(|&id| tile_available(&exec_finish, id).map(|t| (id, t)))
                        .collect();
                    known
                        .iter()
                        .map(|&(_, t)| t)
                        .min()
                        .map(|earliest| earliest.max(port_free))
                        .and_then(|horizon| {
                            known
                                .into_iter()
                                .filter(|&(_, t)| t <= horizon)
                                .max_by(|a, b| {
                                    problem
                                        .weight(a.0)
                                        .cmp(&problem.weight(b.0))
                                        .then(b.0.index().cmp(&a.0.index()))
                                })
                        })
                }
                PortRule::OnDemand => pending
                    .iter()
                    .filter_map(|&id| exec_ready(&exec_finish, id).map(|t| (id, t)))
                    .min_by(|a, b| {
                        a.1.cmp(&b.1)
                            .then_with(|| problem.weight(b.0).cmp(&problem.weight(a.0)))
                            .then(a.0.index().cmp(&b.0.index()))
                    }),
            };
            if let Some((id, available)) = pick {
                let start = port_free.max(available);
                let finish = start + problem.latency;
                loaded_at[id.index()] = Some(finish);
                port_free = finish;
                port_busy_until = if any_load {
                    port_busy_until.max(finish)
                } else {
                    finish
                };
                any_load = true;
                pending.retain(|&p| p != id);
                performed.push(id);
                progress = true;
            }
        }

        if !progress {
            return Err(OracleError::new("deadlocked load order"));
        }
    }

    let exec_makespan = exec_finish
        .iter()
        .map(|t| t.expect("all executions are timed"))
        .max()
        .unwrap_or(Time::ZERO);
    let load_delays: Vec<Time> = (0..n)
        .map(|i| {
            exec_start[i]
                .expect("all executions are timed")
                .saturating_sub(ready_without_load[i])
        })
        .collect();
    Ok(Timing {
        load_order: performed,
        load_delays,
        exec_makespan,
        port_busy_until,
        penalty: exec_makespan.saturating_sub(problem.ideal_makespan),
    })
}

// ---------------------------------------------------------------------------
// Exact branch & bound (design-time optimum) and the critical subtask set.
// ---------------------------------------------------------------------------

const EXHAUSTIVE_LIMIT: usize = 12;
const NODE_LIMIT: u64 = 2_000_000;

/// The optimal load order: list-scheduler incumbent plus depth-first search
/// with an optimistic lower bound, falling back to the incumbent beyond
/// `EXHAUSTIVE_LIMIT` loads.
fn branch_bound(problem: &TimingProblem<'_>) -> Result<Timing, OracleError> {
    let loads = problem.loads_by_weight_desc();
    let incumbent = run_timing(problem, PortRule::ListByWeight)?;
    if loads.len() > EXHAUSTIVE_LIMIT || incumbent.penalty.is_zero() {
        return Ok(incumbent);
    }
    let mut best = incumbent;
    let mut nodes = 0u64;
    let mut prefix = Vec::with_capacity(loads.len());
    explore(problem, &mut prefix, &loads, &mut best, &mut nodes)?;
    Ok(best)
}

fn explore(
    problem: &TimingProblem<'_>,
    prefix: &mut Vec<SubtaskId>,
    remaining: &[SubtaskId],
    best: &mut Timing,
    nodes: &mut u64,
) -> Result<(), OracleError> {
    if best.penalty.is_zero() || *nodes >= NODE_LIMIT {
        return Ok(());
    }
    *nodes += 1;

    if remaining.is_empty() {
        if let Ok(result) = run_timing(problem, PortRule::FixedOrder(prefix)) {
            if result.penalty < best.penalty {
                *best = result;
            }
        }
        return Ok(());
    }

    if !prefix.is_empty() {
        let subset: BTreeSet<SubtaskId> = prefix.iter().copied().collect();
        let relaxed = problem.restricted_to(&subset);
        match run_timing(&relaxed, PortRule::FixedOrder(prefix)) {
            Ok(result) if result.penalty >= best.penalty => return Ok(()),
            Ok(_) => {}
            // A deadlocking prefix can never become feasible.
            Err(_) => return Ok(()),
        }
    }

    for (index, &next) in remaining.iter().enumerate() {
        prefix.push(next);
        let mut rest = remaining.to_vec();
        rest.remove(index);
        explore(problem, prefix, &rest, best, nodes)?;
        prefix.pop();
    }
    Ok(())
}

/// The design-time artifact of the hybrid heuristic: the Critical Subtask
/// set (most critical first) plus the stored load order of the non-critical
/// subtasks and its residual penalty.
struct CriticalArtifact {
    critical: Vec<SubtaskId>,
    stored_order: Vec<SubtaskId>,
}

fn critical_set(
    graph: &SubtaskGraph,
    schedule: &InitialSchedule,
    platform: &Platform,
) -> Result<CriticalArtifact, OracleError> {
    let mut critical: BTreeSet<SubtaskId> = BTreeSet::new();
    loop {
        let problem = TimingProblem::new(graph, schedule, platform, &critical)?;
        let result = branch_bound(&problem)?;
        if result.penalty.is_zero() {
            return Ok(assemble_critical(graph, critical, result.load_order));
        }
        let candidate = result
            .delayed_subtasks()
            .into_iter()
            .filter(|id| !critical.contains(id))
            .max_by(|a, b| {
                problem
                    .weight(*a)
                    .cmp(&problem.weight(*b))
                    .then(b.index().cmp(&a.index()))
            })
            .or_else(|| {
                result
                    .load_order
                    .iter()
                    .copied()
                    .filter(|id| !critical.contains(id))
                    .max_by(|a, b| {
                        problem
                            .weight(*a)
                            .cmp(&problem.weight(*b))
                            .then(b.index().cmp(&a.index()))
                    })
            });
        match candidate {
            Some(pick) => {
                critical.insert(pick);
            }
            // A residual penalty no reuse can remove (e.g. a slot forced to
            // hold two configurations in a row): store it as-is.
            None => return Ok(assemble_critical(graph, critical, result.load_order)),
        }
    }
}

fn assemble_critical(
    graph: &SubtaskGraph,
    critical: BTreeSet<SubtaskId>,
    stored_order: Vec<SubtaskId>,
) -> CriticalArtifact {
    let analysis = GraphAnalysis::new(graph).expect("graph validated by the timing problem");
    let mut critical: Vec<SubtaskId> = critical.into_iter().collect();
    critical.sort_by(|a, b| {
        analysis
            .weight(*b)
            .cmp(&analysis.weight(*a))
            .then(a.index().cmp(&b.index()))
    });
    CriticalArtifact {
        critical,
        stored_order,
    }
}

// ---------------------------------------------------------------------------
// TCM design-time schedule synthesis (Pareto selection).
// ---------------------------------------------------------------------------

/// Energy constants of the TCM model (mirrored values, independent code).
const ISP_ENERGY_FACTOR: f64 = 3.0;
const TILE_STATIC_MJ_PER_MS: f64 = 0.1;
const TILE_ACTIVATION_MJ: f64 = 1.0;

fn graph_execution_energy_mj(graph: &SubtaskGraph) -> f64 {
    graph
        .iter()
        .map(|(_, s)| match s.pe_class() {
            PeClass::Drhw => s.exec_energy_mj(),
            PeClass::Isp => s.exec_energy_mj() * ISP_ENERGY_FACTOR,
        })
        .sum()
}

fn schedule_energy_mj(graph: &SubtaskGraph, tiles: usize, exec_time: Time) -> f64 {
    graph_execution_energy_mj(graph)
        + TILE_STATIC_MJ_PER_MS * tiles as f64 * exec_time.as_millis_f64()
        + TILE_ACTIVATION_MJ * tiles as f64
}

struct CurvePoint {
    schedule: InitialSchedule,
    exec_time: Time,
    energy_mj: f64,
}

impl CurvePoint {
    fn tiles_used(&self) -> usize {
        self.schedule.slot_count()
    }

    fn dominates(&self, other: &CurvePoint) -> bool {
        let no_worse = self.exec_time <= other.exec_time && self.energy_mj <= other.energy_mj;
        let better = self.exec_time < other.exec_time || self.energy_mj < other.energy_mj;
        no_worse && better
    }
}

/// The weight-driven list scheduler of the TCM design-time phase: schedules
/// the graph onto exactly `slots` abstract DRHW slots plus one ISP, ignoring
/// reconfiguration latency.
fn design_time_schedule(
    graph: &SubtaskGraph,
    slots: usize,
) -> Result<InitialSchedule, OracleError> {
    let analysis =
        GraphAnalysis::new(graph).map_err(|e| OracleError::new(format!("invalid graph: {e}")))?;
    let n = graph.len();
    let mut finish: Vec<Option<Time>> = vec![None; n];
    let mut remaining_preds: Vec<usize> =
        graph.ids().map(|id| graph.predecessors(id).len()).collect();
    let mut assignment: Vec<PeAssignment> = vec![PeAssignment::Isp(IspId::new(0)); n];
    let mut pe_order: BTreeMap<PeAssignment, Vec<SubtaskId>> = BTreeMap::new();
    let mut slot_free = vec![Time::ZERO; slots.max(1)];
    let mut isp_free = Time::ZERO;
    let mut ready: Vec<SubtaskId> = graph
        .ids()
        .filter(|&id| remaining_preds[id.index()] == 0)
        .collect();
    let mut scheduled = 0usize;

    while scheduled < n {
        ready.sort_by(|a, b| {
            analysis
                .weight(*b)
                .cmp(&analysis.weight(*a))
                .then(a.index().cmp(&b.index()))
        });
        let id = ready.remove(0);
        let preds_ready = graph
            .predecessors(id)
            .iter()
            .map(|&p| finish[p.index()].expect("predecessors are scheduled first"))
            .max()
            .unwrap_or(Time::ZERO);
        let pe = match graph.subtask(id).pe_class() {
            PeClass::Drhw => {
                // Earliest start wins; equal starts prefer the busiest slot.
                let (slot, &free) = slot_free
                    .iter()
                    .enumerate()
                    .min_by_key(|(i, &f)| (f.max(preds_ready), std::cmp::Reverse(f), *i))
                    .expect("at least one slot exists");
                slot_free[slot] = free.max(preds_ready) + graph.subtask(id).exec_time();
                PeAssignment::Tile(TileSlot::new(slot))
            }
            PeClass::Isp => {
                let start = isp_free.max(preds_ready);
                isp_free = start + graph.subtask(id).exec_time();
                PeAssignment::Isp(IspId::new(0))
            }
        };
        let start = match pe {
            PeAssignment::Tile(slot) => {
                slot_free[slot.index()].saturating_sub(graph.subtask(id).exec_time())
            }
            PeAssignment::Isp(_) => isp_free.saturating_sub(graph.subtask(id).exec_time()),
        };
        assignment[id.index()] = pe;
        pe_order.entry(pe).or_default().push(id);
        finish[id.index()] = Some(start + graph.subtask(id).exec_time());
        scheduled += 1;
        for &succ in graph.successors(id) {
            remaining_preds[succ.index()] -= 1;
            if remaining_preds[succ.index()] == 0 {
                ready.push(succ);
            }
        }
    }

    InitialSchedule::with_order(graph, assignment, pe_order)
        .map_err(|e| OracleError::new(format!("design-time schedule rejected: {e}")))
}

/// The Pareto curve of one graph: one candidate per tile allocation,
/// dominated candidates removed, sorted by increasing execution time.
fn pareto_curve(graph: &SubtaskGraph, platform: &Platform) -> Result<Vec<CurvePoint>, OracleError> {
    let drhw = graph.drhw_subtasks().len();
    let max_slots = drhw.min(platform.tile_count()).max(1);
    let mut points: Vec<CurvePoint> = Vec::new();
    for slots in 1..=max_slots {
        let schedule = design_time_schedule(graph, slots)?;
        let exec_time = schedule
            .ideal_timing(graph)
            .map_err(|e| OracleError::new(format!("untimeable schedule: {e}")))?
            .makespan();
        let energy_mj = schedule_energy_mj(graph, schedule.slot_count(), exec_time);
        let candidate = CurvePoint {
            schedule,
            exec_time,
            energy_mj,
        };
        if points.iter().any(|p| p.dominates(&candidate)) {
            continue;
        }
        points.retain(|p| !candidate.dominates(p));
        if !points
            .iter()
            .any(|p| p.exec_time == candidate.exec_time && p.energy_mj == candidate.energy_mj)
        {
            points.push(candidate);
        }
    }
    points.sort_by(|a, b| {
        a.exec_time.cmp(&b.exec_time).then(
            a.energy_mj
                .partial_cmp(&b.energy_mj)
                .expect("energy is finite"),
        )
    });
    Ok(points)
}

fn fastest_within_tiles(points: &[CurvePoint], tiles: usize) -> Option<&CurvePoint> {
    points
        .iter()
        .filter(|p| p.tiles_used() <= tiles)
        .min_by_key(|p| p.exec_time)
}

fn best_within(points: &[CurvePoint], deadline: Option<Time>, tiles: usize) -> Option<&CurvePoint> {
    points
        .iter()
        .filter(|p| p.tiles_used() <= tiles)
        .filter(|p| deadline.is_none_or(|d| p.exec_time <= d))
        .min_by(|a, b| {
            a.energy_mj
                .partial_cmp(&b.energy_mj)
                .expect("energy is finite")
        })
}

// ---------------------------------------------------------------------------
// The reference simulator.
// ---------------------------------------------------------------------------

/// A straight-line re-implementation of the dynamic multi-iteration
/// evaluation, used to arbitrate the fast engine's numbers.
///
/// # Examples
///
/// ```
/// use drhw_model::{ConfigId, Platform, Subtask, SubtaskGraph, Task, TaskId, TaskSet, Time};
/// use drhw_oracle::reference::{OracleConfig, ReferencePolicy, ReferenceSimulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut graph = SubtaskGraph::new("toy");
/// let a = graph.add_subtask(Subtask::new("a", Time::from_millis(10), ConfigId::new(0)));
/// let b = graph.add_subtask(Subtask::new("b", Time::from_millis(10), ConfigId::new(1)));
/// graph.add_dependency(a, b)?;
/// let set = TaskSet::new("toy", vec![Task::single_scenario(TaskId::new(0), "toy", graph)?])?;
/// let platform = Platform::virtex_like(4)?;
/// let config = OracleConfig { iterations: 10, ..OracleConfig::default() };
/// let oracle = ReferenceSimulator::new(&set, &platform, config)?;
/// let outcomes = oracle.simulate_policy(ReferencePolicy::Hybrid)?;
/// assert_eq!(outcomes.len(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ReferenceSimulator<'a> {
    task_set: &'a TaskSet,
    platform: &'a Platform,
    config: OracleConfig,
}

impl<'a> ReferenceSimulator<'a> {
    /// Creates a reference simulator after validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is out of range.
    pub fn new(
        task_set: &'a TaskSet,
        platform: &'a Platform,
        config: OracleConfig,
    ) -> Result<Self, OracleError> {
        config.validate()?;
        Ok(ReferenceSimulator {
            task_set,
            platform,
            config,
        })
    }

    /// The configuration of this simulator.
    pub fn config(&self) -> &OracleConfig {
        &self.config
    }

    /// The seed driving iteration `index`.
    fn iteration_seed(&self, index: usize) -> u64 {
        splitmix64(
            self.config
                .seed
                .wrapping_add((index as u64).wrapping_mul(GOLDEN_GAMMA)),
        )
    }

    /// Which tasks run in iteration `index` and in which scenarios.
    pub fn activations(&self, index: usize) -> Vec<(TaskId, ScenarioId)> {
        self.pick_activations(index)
            .into_iter()
            .map(|(task, scenario)| (task.id(), scenario))
            .collect()
    }

    fn pick_activations(&self, index: usize) -> Vec<(&'a Task, ScenarioId)> {
        let mut stream = Stream::seeded(self.iteration_seed(index));
        let tasks = self.task_set.tasks();
        let mut selected: Vec<&Task> = tasks
            .iter()
            .filter(|_| stream.bernoulli(self.config.task_inclusion_probability))
            .collect();
        if selected.is_empty() {
            selected.push(&tasks[stream.range(0, tasks.len())]);
        }
        stream.shuffle(&mut selected);

        match &self.config.scenario_rule {
            ScenarioRule::Independent => selected
                .into_iter()
                .map(|task| {
                    let scenario = pick_weighted_scenario(task, &mut stream);
                    (task, scenario)
                })
                .collect(),
            ScenarioRule::Correlated(combos) => {
                let combo = &combos[stream.range(0, combos.len())];
                selected
                    .into_iter()
                    .map(|task| {
                        let scenario = combo
                            .get(&task.id())
                            .copied()
                            .unwrap_or_else(|| task.scenarios()[0].id());
                        (task, scenario)
                    })
                    .collect()
            }
        }
    }

    /// Synthesises the initial schedule the TCM layer selects for one
    /// scenario, from scratch.
    fn build_schedule(
        &self,
        task: &Task,
        graph: &SubtaskGraph,
    ) -> Result<InitialSchedule, OracleError> {
        let tiles = self.platform.tile_count();
        let fastest_fallback = || -> Result<InitialSchedule, OracleError> {
            let curve = pareto_curve(graph, self.platform)?;
            fastest_within_tiles(&curve, tiles)
                .map(|p| p.schedule.clone())
                .ok_or_else(|| {
                    OracleError::new(format!(
                        "no Pareto point of {:?} fits on {tiles} tiles",
                        graph.name()
                    ))
                })
        };
        match self.config.point_selection {
            PointSelectionRule::FullyParallel => {
                let parallel = InitialSchedule::fully_parallel(graph)
                    .map_err(|e| OracleError::new(format!("invalid graph: {e}")))?;
                if parallel.slot_count() <= tiles {
                    Ok(parallel)
                } else {
                    fastest_fallback()
                }
            }
            PointSelectionRule::Fastest => fastest_fallback(),
            PointSelectionRule::EnergyAware => {
                let curve = pareto_curve(graph, self.platform)?;
                best_within(&curve, task.deadline(), tiles)
                    .or_else(|| fastest_within_tiles(&curve, tiles))
                    .map(|p| p.schedule.clone())
                    .ok_or_else(|| {
                        OracleError::new(format!(
                            "no Pareto point of {:?} fits on {tiles} tiles",
                            graph.name()
                        ))
                    })
            }
        }
    }

    /// Simulates every iteration of one policy, straight-line, and returns
    /// the per-iteration outcomes in order.
    ///
    /// # Errors
    ///
    /// Returns the first scheduling error in iteration order.
    pub fn simulate_policy(
        &self,
        policy: ReferencePolicy,
    ) -> Result<Vec<ReferenceOutcome>, OracleError> {
        let mut outcomes = Vec::with_capacity(self.config.iterations);
        let mut tiles = Tiles::cold(self.platform.tile_count());
        let mut window = Time::ZERO;
        let mut now = Time::ZERO;
        for index in 0..self.config.iterations {
            if index % self.config.chunk_size == 0 {
                tiles = Tiles::cold(self.platform.tile_count());
                window = Time::ZERO;
                now = Time::ZERO;
            }
            outcomes.push(self.run_iteration(policy, index, &mut tiles, &mut window, &mut now)?);
        }
        Ok(outcomes)
    }

    /// Simulates one policy and sums the outcomes into an aggregate report,
    /// folding the floating-point energy total in the engine's chunk order.
    ///
    /// # Errors
    ///
    /// Returns the first scheduling error in iteration order.
    pub fn report(&self, policy: ReferencePolicy) -> Result<ReferenceReport, OracleError> {
        Ok(ReferenceReport::from_outcomes_chunked(
            &self.simulate_policy(policy)?,
            self.config.chunk_size,
        ))
    }

    fn run_iteration(
        &self,
        policy: ReferencePolicy,
        index: usize,
        tiles: &mut Tiles,
        window: &mut Time,
        now: &mut Time,
    ) -> Result<ReferenceOutcome, OracleError> {
        let latency = self.platform.reconfig_latency();
        let activations = self.pick_activations(index);
        let mut outcome = ReferenceOutcome::default();

        for (position, &(task, scenario_id)) in activations.iter().enumerate() {
            let scenario = task.scenario(scenario_id).ok_or_else(|| {
                OracleError::new(format!(
                    "task {} has no scenario {}",
                    task.id(),
                    scenario_id
                ))
            })?;
            let graph = scenario.graph();
            let schedule = self.build_schedule(task, graph)?;
            let ideal = schedule
                .ideal_timing(graph)
                .map_err(|e| OracleError::new(format!("untimeable schedule: {e}")))?
                .makespan();

            // Configurations upcoming activations will want: protected from
            // eviction by the reuse-aware replacement rule.
            let mut protected: BTreeSet<ConfigId> = BTreeSet::new();
            for &(later, later_scenario) in &activations[position + 1..] {
                let Some(later_scenario) = later.scenario(later_scenario) else {
                    continue;
                };
                let later_graph = later_scenario.graph();
                for id in later_graph.drhw_subtasks() {
                    if let Some(config) = later_graph.required_config(id) {
                        protected.insert(config);
                    }
                }
            }
            let mapping =
                assign_tiles(graph, &schedule, tiles, self.config.replacement, &protected)?;
            let resident: BTreeSet<SubtaskId> = if policy.exploits_reuse() {
                resident_subtasks(graph, &schedule, &mapping, tiles)
            } else {
                BTreeSet::new()
            };

            let (penalty, loads, cancelled) = match policy {
                ReferencePolicy::NoPrefetch => {
                    let problem =
                        TimingProblem::new(graph, &schedule, self.platform, &BTreeSet::new())?;
                    let timing = run_timing(&problem, PortRule::OnDemand)?;
                    (timing.penalty, timing.load_order.len(), 0)
                }
                ReferencePolicy::DesignTimeOnly => {
                    // The frozen design-time optimum, recomputed from scratch.
                    let problem =
                        TimingProblem::new(graph, &schedule, self.platform, &BTreeSet::new())?;
                    let timing = branch_bound(&problem)?;
                    (timing.penalty, timing.load_order.len(), 0)
                }
                ReferencePolicy::RunTime => {
                    let problem = TimingProblem::new(graph, &schedule, self.platform, &resident)?;
                    let timing = run_timing(&problem, PortRule::ListByWeight)?;
                    (timing.penalty, timing.load_order.len(), 0)
                }
                ReferencePolicy::RunTimeInterTask => {
                    let base = TimingProblem::new(graph, &schedule, self.platform, &resident)?;
                    let by_weight = base.loads_by_weight_desc();
                    let fit = whole_loads(*window, latency).min(by_weight.len());
                    let preloaded = &by_weight[..fit];
                    let mut extended = resident.clone();
                    extended.extend(preloaded.iter().copied());
                    let problem = TimingProblem::new(graph, &schedule, self.platform, &extended)?;
                    let timing = run_timing(&problem, PortRule::ListByWeight)?;
                    *window = timing.trailing_port_idle();
                    (timing.penalty, timing.load_order.len() + preloaded.len(), 0)
                }
                ReferencePolicy::Hybrid => {
                    let artifact = critical_set(graph, &schedule, self.platform)?;
                    let (timing, init, preloaded, body, cancelled) = self.hybrid_activation(
                        graph, &schedule, &artifact, &resident, *window, latency,
                    )?;
                    *window = timing.trailing_port_idle();
                    let loads = init + body + preloaded;
                    (timing.penalty, loads, cancelled)
                }
            };

            outcome.activations += 1;
            outcome.ideal += ideal;
            outcome.penalty += penalty;
            outcome.loads_performed += loads;
            outcome.loads_cancelled += cancelled;
            outcome.drhw_subtasks_executed += graph.drhw_subtasks().len();
            outcome.reused_subtasks += resident.len();
            outcome.reconfiguration_energy_mj += loads as f64 * self.platform.reconfig_energy_mj();

            *now += ideal + penalty;
            commit_contents(graph, &schedule, &mapping, tiles, *now);
        }

        Ok(outcome)
    }

    /// The hybrid run-time phase for one activation: decide the
    /// initialization loads, the window-hidden preloads, the surviving body
    /// loads and the cancelled ones, then time the body with the stored
    /// order. Returns `(timing, init, preloaded, body, cancelled)` counts.
    #[allow(clippy::too_many_arguments)]
    fn hybrid_activation(
        &self,
        graph: &SubtaskGraph,
        schedule: &InitialSchedule,
        artifact: &CriticalArtifact,
        resident: &BTreeSet<SubtaskId>,
        window: Time,
        latency: Time,
    ) -> Result<(Timing, usize, usize, usize, usize), OracleError> {
        let base = TimingProblem::new(graph, schedule, self.platform, resident)?;
        let cs: BTreeSet<SubtaskId> = artifact.critical.iter().copied().collect();
        let assumed_resident: BTreeSet<SubtaskId> = resident.union(&cs).copied().collect();
        let assumed = TimingProblem::new(graph, schedule, self.platform, &assumed_resident)?;

        // Critical loads the initialization phase must realise (pre-loading
        // only helps when the slot is untouched before the subtask runs).
        let mut init: Vec<SubtaskId> = artifact
            .critical
            .iter()
            .copied()
            .filter(|&id| base.needs_load[id.index()] && !assumed.needs_load[id.index()])
            .collect();
        let fit = whole_loads(window, latency).min(init.len());
        let preloaded: Vec<SubtaskId> = init.drain(..fit).collect();

        // Body loads: the stored order minus cancelled entries, plus any
        // critical subtask whose reuse cannot be realised.
        let body_needed: BTreeSet<SubtaskId> = assumed.loads().into_iter().collect();
        let mut body_loads: Vec<SubtaskId> = artifact
            .stored_order
            .iter()
            .copied()
            .filter(|id| body_needed.contains(id))
            .collect();
        for id in &body_needed {
            if !body_loads.contains(id) {
                body_loads.push(*id);
            }
        }
        let cancelled = artifact
            .stored_order
            .iter()
            .filter(|id| !body_needed.contains(id))
            .count();

        let init_duration = latency * init.len() as u64;
        let mut body_resident = resident.clone();
        body_resident.extend(init.iter().copied());
        body_resident.extend(preloaded.iter().copied());
        let body_problem = TimingProblem::new(graph, schedule, self.platform, &body_resident)?
            .with_offsets(init_duration, init_duration);
        let timing = run_timing(&body_problem, PortRule::FixedOrder(&body_loads))?;
        Ok((
            timing,
            init.len(),
            preloaded.len(),
            body_loads.len(),
            cancelled,
        ))
    }
}

/// How many whole loads of `latency` fit in the port-idle `window`.
fn whole_loads(window: Time, latency: Time) -> usize {
    if latency.is_zero() {
        usize::MAX
    } else {
        (window.as_micros() / latency.as_micros()) as usize
    }
}

/// Picks a scenario with probability proportional to the scenario weights.
fn pick_weighted_scenario(task: &Task, stream: &mut Stream) -> ScenarioId {
    let total: f64 = task.scenarios().iter().map(|s| s.probability()).sum();
    if total <= 0.0 {
        return task.scenarios()[0].id();
    }
    let mut draw = stream.unit_f64() * total;
    for scenario in task.scenarios() {
        draw -= scenario.probability();
        if draw <= 0.0 {
            return scenario.id();
        }
    }
    task.scenarios()
        .last()
        .expect("tasks always have a scenario")
        .id()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drhw_model::Subtask;

    fn toy_set() -> TaskSet {
        let mut g = SubtaskGraph::new("pipe");
        let a = g.add_subtask(Subtask::new("a", Time::from_millis(9), ConfigId::new(0)));
        let b = g.add_subtask(Subtask::new("b", Time::from_millis(7), ConfigId::new(1)));
        g.add_dependency(a, b).unwrap();
        TaskSet::new(
            "toy",
            vec![Task::single_scenario(TaskId::new(0), "pipe", g).unwrap()],
        )
        .unwrap()
    }

    #[test]
    fn iteration_streams_are_deterministic() {
        let set = toy_set();
        let platform = Platform::virtex_like(4).unwrap();
        let config = OracleConfig {
            iterations: 20,
            ..OracleConfig::default()
        };
        let oracle = ReferenceSimulator::new(&set, &platform, config).unwrap();
        assert_eq!(oracle.activations(7), oracle.activations(7));
        let a = oracle.simulate_policy(ReferencePolicy::Hybrid).unwrap();
        let b = oracle.simulate_policy(ReferencePolicy::Hybrid).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn policies_are_paired_on_identical_workloads() {
        let set = toy_set();
        let platform = Platform::virtex_like(4).unwrap();
        let config = OracleConfig {
            iterations: 12,
            ..OracleConfig::default()
        };
        let oracle = ReferenceSimulator::new(&set, &platform, config).unwrap();
        let hybrid = oracle.simulate_policy(ReferencePolicy::Hybrid).unwrap();
        let none = oracle.simulate_policy(ReferencePolicy::NoPrefetch).unwrap();
        for (h, n) in hybrid.iter().zip(&none) {
            assert_eq!(h.activations, n.activations);
            assert_eq!(h.ideal, n.ideal);
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let set = toy_set();
        let platform = Platform::virtex_like(4).unwrap();
        let bad = OracleConfig {
            iterations: 0,
            ..OracleConfig::default()
        };
        assert!(ReferenceSimulator::new(&set, &platform, bad).is_err());
        let bad = OracleConfig {
            chunk_size: 0,
            ..OracleConfig::default()
        };
        assert!(ReferenceSimulator::new(&set, &platform, bad).is_err());
        let bad = OracleConfig {
            task_inclusion_probability: 1.5,
            ..OracleConfig::default()
        };
        assert!(ReferenceSimulator::new(&set, &platform, bad).is_err());
        let bad = OracleConfig {
            scenario_rule: ScenarioRule::Correlated(Vec::new()),
            ..OracleConfig::default()
        };
        assert!(ReferenceSimulator::new(&set, &platform, bad).is_err());
    }
}
