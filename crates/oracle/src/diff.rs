//! The differential harness: pinned fuzz corpus, bit-for-bit comparison,
//! first-divergence shrinking.
//!
//! A [`DiffCase`] pins one `(workload, tiles, seed, knobs)` tuple. Running a
//! case sweeps **all five policies** and compares the parallel engine against
//! the straight-line reference three ways:
//!
//! 1. per-iteration outcomes (`IterationPlan::evaluate_run`), field by field;
//! 2. the aggregate report of a single-threaded `SimBatch`;
//! 3. the aggregate report of a default-thread-count `SimBatch`.
//!
//! Integer fields must match exactly and the floating-point energy total must
//! match **bit for bit** (`f64::to_bits`), because the engine promises
//! reports independent of its thread count and the reference defines what
//! the numbers ought to be.
//!
//! When a case diverges, [`run_corpus`] shrinks it before reporting: the
//! iteration count is cut to the first divergent iteration, then whole
//! tasks, scenarios and trailing subtasks are removed while the divergence
//! persists. The resulting [`Divergence`] prints the minimal failing task
//! set, ready to paste into a regression test.

use std::collections::BTreeMap;

use drhw_engine::{Engine, JobSpec};
use drhw_model::{PeClass, Platform, Scenario, ScenarioId, SubtaskGraph, Task, TaskId, TaskSet};
use drhw_prefetch::{PolicyKind, ReplacementPolicy};
use drhw_sim::{
    IterationOutcome, IterationPlan, PointSelection, ScenarioPolicy, SimBatch, SimulationConfig,
    SimulationReport,
};
use drhw_workloads::{FuzzFamily, FuzzWorkload, Workload};

use crate::reference::{
    OracleConfig, PointSelectionRule, ReferenceOutcome, ReferencePolicy, ReferenceReport,
    ReferenceSimulator, ReplacementRule, ScenarioRule,
};

/// The pinned master seed every corpus derives from. Changing it re-rolls
/// every generated case, so treat it like a golden value.
pub const CORPUS_SEED: u64 = 0xD1FF_2005;

/// Environment variable scaling the corpus (`DRHW_FUZZ_CASES`).
pub const FUZZ_CASES_ENV: &str = "DRHW_FUZZ_CASES";

/// Reads the corpus size from `DRHW_FUZZ_CASES`, falling back to `default`
/// when the variable is unset or unparseable.
pub fn corpus_cases_from_env(default: usize) -> usize {
    std::env::var(FUZZ_CASES_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// One differential test case: a concrete task set plus every knob both
/// simulators consume.
#[derive(Debug, Clone)]
pub struct DiffCase {
    /// Human-readable label (workload name, tiles, seed).
    pub label: String,
    /// The task set both sides simulate.
    pub task_set: TaskSet,
    /// DRHW tile count of the platform.
    pub tiles: usize,
    /// The engine-side configuration (the oracle side is derived from it).
    pub config: SimulationConfig,
    /// Registry name of the workload the case was generated from, when the
    /// task set is reproducible by name — this is what lets [`run_corpus`]
    /// additionally push the case through the `drhw-engine` job path.
    /// Structurally shrunk cases lose the name (`None`).
    pub workload: Option<String>,
}

impl DiffCase {
    /// Builds a case from a registered workload and explicit knobs.
    pub fn from_workload(
        workload: &dyn Workload,
        tiles: usize,
        iterations: usize,
        seed: u64,
        chunk_size: usize,
    ) -> Self {
        let mut config = SimulationConfig::default()
            .with_iterations(iterations)
            .with_seed(seed)
            .with_chunk_size(chunk_size);
        config.task_inclusion_probability = workload.task_inclusion_probability();
        if let Some(combos) = workload.correlated_scenarios() {
            config = config.with_scenario_policy(ScenarioPolicy::Correlated(combos));
        }
        DiffCase {
            label: format!("{}@{tiles}t seed={seed}", workload.name()),
            task_set: workload.task_set(),
            tiles,
            config,
            workload: Some(workload.name().to_string()),
        }
    }

    /// The job spec reproducing this case through the `drhw-engine` path, or
    /// `None` when the task set is not reproducible by name.
    pub fn job_spec(&self) -> Option<JobSpec> {
        let workload = self.workload.as_ref()?;
        Some(
            JobSpec::new(workload)
                .with_tiles(self.tiles)
                .with_iterations(self.config.iterations)
                .with_seed(self.config.seed)
                .with_chunk_size(self.config.chunk_size)
                .with_replacement(self.config.replacement)
                .with_point_selection(self.config.point_selection)
                .with_task_inclusion_probability(self.config.task_inclusion_probability),
        )
    }

    fn oracle_config(&self) -> OracleConfig {
        OracleConfig {
            iterations: self.config.iterations,
            seed: self.config.seed,
            task_inclusion_probability: self.config.task_inclusion_probability,
            replacement: match self.config.replacement {
                ReplacementPolicy::ReuseAware => ReplacementRule::ReuseAware,
                ReplacementPolicy::LeastRecentlyUsed => ReplacementRule::LeastRecentlyUsed,
                ReplacementPolicy::Direct => ReplacementRule::Direct,
            },
            point_selection: match self.config.point_selection {
                PointSelection::FullyParallel => PointSelectionRule::FullyParallel,
                PointSelection::Fastest => PointSelectionRule::Fastest,
                PointSelection::EnergyAware => PointSelectionRule::EnergyAware,
            },
            scenario_rule: match &self.config.scenario_policy {
                ScenarioPolicy::Independent => ScenarioRule::Independent,
                ScenarioPolicy::Correlated(combos) => ScenarioRule::Correlated(combos.clone()),
            },
            chunk_size: self.config.chunk_size,
        }
    }
}

/// The reference policy matching an engine policy.
pub fn reference_policy(policy: PolicyKind) -> ReferencePolicy {
    match policy {
        PolicyKind::NoPrefetch => ReferencePolicy::NoPrefetch,
        PolicyKind::DesignTimeOnly => ReferencePolicy::DesignTimeOnly,
        PolicyKind::RunTime => ReferencePolicy::RunTime,
        PolicyKind::RunTimeInterTask => ReferencePolicy::RunTimeInterTask,
        PolicyKind::Hybrid => ReferencePolicy::Hybrid,
    }
}

/// One confirmed disagreement between the engine and the reference.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Label of the diverging case.
    pub case: String,
    /// The policy under which the sides disagreed.
    pub policy: PolicyKind,
    /// The first diverging iteration, or `None` for aggregate-report
    /// comparisons.
    pub iteration: Option<usize>,
    /// The first diverging field (aggregate comparisons carry the thread
    /// mode of the batch pass, e.g. `penalty_total[threads=1]`).
    pub field: String,
    /// The engine's value, rendered.
    pub engine: String,
    /// The reference's value, rendered.
    pub oracle: String,
    /// Description of the shrunk minimal counterexample, when shrinking ran.
    pub minimized: Option<String>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "differential divergence in {case} under {policy}",
            case = self.case,
            policy = self.policy
        )?;
        match self.iteration {
            Some(i) => write!(f, " at iteration {i}")?,
            None => write!(f, " in the aggregate report")?,
        }
        write!(
            f,
            ": field `{}` engine={} oracle={}",
            self.field, self.engine, self.oracle
        )?;
        if let Some(minimized) = &self.minimized {
            write!(f, "\nminimal counterexample:\n{minimized}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Divergence {}

/// Statistics of one successfully compared case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseOutcome {
    /// The case label.
    pub label: String,
    /// Iterations compared per policy.
    pub iterations: usize,
    /// Policies swept (always all five).
    pub policies: usize,
    /// The aggregate default-thread-count [`SimBatch`] reports of the case,
    /// when every policy simulated cleanly — reused by [`run_corpus`] as
    /// the comparison target for the engine replay, so the direct path is
    /// not recomputed.
    pub reports: Option<Vec<SimulationReport>>,
}

macro_rules! compare_fields {
    ($case:expr, $policy:expr, $iteration:expr, $suffix:expr, [$( ($name:literal, $engine:expr, $oracle:expr) ),* $(,)?]) => {
        $(
            if $engine != $oracle {
                return Err(Box::new(Divergence {
                    case: $case.label.clone(),
                    policy: $policy,
                    iteration: $iteration,
                    field: format!("{}{}", $name, $suffix),
                    engine: format!("{:?}", $engine),
                    oracle: format!("{:?}", $oracle),
                    minimized: None,
                }));
            }
        )*
    };
}

fn compare_outcome(
    case: &DiffCase,
    policy: PolicyKind,
    iteration: usize,
    engine: &IterationOutcome,
    oracle: &ReferenceOutcome,
) -> Result<(), Box<Divergence>> {
    compare_fields!(
        case,
        policy,
        Some(iteration),
        "",
        [
            ("activations", engine.activations(), oracle.activations),
            ("ideal", engine.ideal(), oracle.ideal),
            ("penalty", engine.penalty(), oracle.penalty),
            (
                "loads_performed",
                engine.loads_performed(),
                oracle.loads_performed
            ),
            (
                "loads_cancelled",
                engine.loads_cancelled(),
                oracle.loads_cancelled
            ),
            (
                "drhw_subtasks_executed",
                engine.drhw_subtasks_executed(),
                oracle.drhw_subtasks_executed
            ),
            (
                "reused_subtasks",
                engine.reused_subtasks(),
                oracle.reused_subtasks
            ),
            (
                "reconfiguration_energy_mj_bits",
                engine.reconfiguration_energy_mj().to_bits(),
                oracle.reconfiguration_energy_mj.to_bits()
            ),
        ]
    );
    Ok(())
}

fn compare_report(
    case: &DiffCase,
    policy: PolicyKind,
    threads: &'static str,
    engine: &SimulationReport,
    oracle: &ReferenceReport,
) -> Result<(), Box<Divergence>> {
    let suffix = format!("[threads={threads}]");
    compare_fields!(
        case,
        policy,
        None,
        suffix,
        [
            ("activations", engine.activations(), oracle.activations),
            ("ideal_total", engine.ideal_total(), oracle.ideal_total),
            (
                "penalty_total",
                engine.penalty_total(),
                oracle.penalty_total
            ),
            (
                "loads_performed",
                engine.loads_performed(),
                oracle.loads_performed
            ),
            (
                "loads_cancelled",
                engine.loads_cancelled(),
                oracle.loads_cancelled
            ),
            (
                "drhw_subtasks_executed",
                engine.drhw_subtasks_executed(),
                oracle.drhw_subtasks_executed
            ),
            (
                "reused_subtasks",
                engine.reused_subtasks(),
                oracle.reused_subtasks
            ),
            (
                "reconfiguration_energy_mj_bits",
                engine.reconfiguration_energy_mj().to_bits(),
                oracle.reconfiguration_energy_mj.to_bits()
            ),
        ]
    );

    Ok(())
}

/// Runs one case: all five policies, per-iteration and aggregate (1 thread
/// and default threads) comparisons.
///
/// # Errors
///
/// Returns the first [`Divergence`] in (policy, iteration) order. A case
/// where both sides fail to simulate counts as agreement; a case where only
/// one side fails is reported as a divergence in the `error` field.
pub fn run_case(case: &DiffCase) -> Result<CaseOutcome, Box<Divergence>> {
    let platform = Platform::virtex_like(case.tiles).expect("corpus tile counts are positive");
    let plan = IterationPlan::new(&case.task_set, &platform, case.config.clone());
    let oracle = ReferenceSimulator::new(&case.task_set, &platform, case.oracle_config())
        .expect("oracle config mirrors a validated engine config");

    let plan = match plan {
        Ok(plan) => plan,
        Err(engine_error) => {
            // The engine rejected the case outright; the oracle must reject
            // it too (any policy's first iteration suffices as the probe).
            return match oracle.simulate_policy(ReferencePolicy::NoPrefetch) {
                Err(_) => Ok(CaseOutcome {
                    label: case.label.clone(),
                    iterations: 0,
                    policies: PolicyKind::ALL.len(),
                    reports: None,
                }),
                Ok(_) => Err(Box::new(Divergence {
                    case: case.label.clone(),
                    policy: PolicyKind::NoPrefetch,
                    iteration: None,
                    field: "error".to_string(),
                    engine: engine_error.to_string(),
                    oracle: "simulated successfully".to_string(),
                    minimized: None,
                })),
            };
        }
    };

    let mut reference_reports: Vec<Option<ReferenceReport>> =
        Vec::with_capacity(PolicyKind::ALL.len());
    for policy in PolicyKind::ALL {
        let mirror = reference_policy(policy);
        let engine_run = plan.evaluate_run(policy);
        let oracle_run = oracle.simulate_policy(mirror);
        let (engine_run, oracle_run) = match (engine_run, oracle_run) {
            (Ok(e), Ok(o)) => (e, o),
            (Err(_), Err(_)) => {
                // Both sides agree the case is unschedulable under this
                // policy; the aggregate batch pass is skipped below.
                reference_reports.push(None);
                continue;
            }
            (Err(e), Ok(_)) => {
                return Err(Box::new(Divergence {
                    case: case.label.clone(),
                    policy,
                    iteration: None,
                    field: "error".to_string(),
                    engine: e.to_string(),
                    oracle: "simulated successfully".to_string(),
                    minimized: None,
                }))
            }
            (Ok(_), Err(o)) => {
                return Err(Box::new(Divergence {
                    case: case.label.clone(),
                    policy,
                    iteration: None,
                    field: "error".to_string(),
                    engine: "simulated successfully".to_string(),
                    oracle: o.to_string(),
                    minimized: None,
                }))
            }
        };
        assert_eq!(engine_run.len(), oracle_run.len(), "iteration counts match");
        for (iteration, (engine, oracle_outcome)) in engine_run.iter().zip(&oracle_run).enumerate()
        {
            compare_outcome(case, policy, iteration, engine, oracle_outcome)?;
        }
        // The engine folds per-chunk partial sums in chunk order; mirror that
        // grouping so the f64 energy total is comparable bit for bit.
        reference_reports.push(Some(ReferenceReport::from_outcomes_chunked(
            &oracle_run,
            case.config.chunk_size,
        )));
    }

    // Aggregate comparison: one batch per thread mode covering every policy
    // at once (a batch over a policy subset would still be bit-identical,
    // but sweeping all five in one pool is what production runs do).
    let mut batch_reports = None;
    if reference_reports.iter().all(Option::is_some) {
        let single = SimBatch::with_threads(&plan, 1)
            .run(&PolicyKind::ALL)
            .expect("per-iteration pass already succeeded");
        let parallel = SimBatch::new(&plan)
            .run(&PolicyKind::ALL)
            .expect("per-iteration pass already succeeded");
        for (which, policy) in PolicyKind::ALL.into_iter().enumerate() {
            let reference = reference_reports[which]
                .as_ref()
                .expect("all policies succeeded");
            compare_report(case, policy, "1", &single[which], reference)?;
            compare_report(case, policy, "default", &parallel[which], reference)?;
        }
        batch_reports = Some(parallel);
    }

    Ok(CaseOutcome {
        label: case.label.clone(),
        iterations: case.config.iterations,
        policies: PolicyKind::ALL.len(),
        reports: batch_reports,
    })
}

/// The pinned corpus: `cases` deterministic cases cycling through the six
/// DAG families, tile counts, chunk sizes, replacement rules and
/// point-selection strategies. The same `cases` value always yields the same
/// corpus (derived from [`CORPUS_SEED`]).
pub fn pinned_corpus(cases: usize) -> Vec<DiffCase> {
    let chunk_sizes = [3usize, 4, 5, 8];
    let replacements = [
        ReplacementPolicy::ReuseAware,
        ReplacementPolicy::LeastRecentlyUsed,
        ReplacementPolicy::Direct,
    ];
    (0..cases)
        .map(|i| {
            let family = FuzzFamily::ALL[i % FuzzFamily::ALL.len()];
            let fuzz_seed = CORPUS_SEED.wrapping_add(i as u64);
            let workload = FuzzWorkload::new(family, fuzz_seed);
            let sweep: Vec<usize> = workload.tile_sweep().collect();
            let tiles = sweep[i / FuzzFamily::ALL.len() % sweep.len()];
            let iterations = 6 + i % 7;
            let chunk_size = chunk_sizes[i % chunk_sizes.len()];
            let mut case = DiffCase::from_workload(
                &workload,
                tiles,
                iterations,
                CORPUS_SEED ^ (i as u64).rotate_left(17),
                chunk_size,
            );
            case.config.replacement = replacements[i % replacements.len()];
            case.config.point_selection = match i % 5 {
                3 => PointSelection::Fastest,
                4 => PointSelection::EnergyAware,
                _ => PointSelection::FullyParallel,
            };
            case.label = format!("#{i} {}", case.label);
            case
        })
        .collect()
}

/// Runs a whole corpus, shrinking the first divergence before returning it.
///
/// Every case that carries a workload name is additionally replayed through
/// the `drhw-engine` job path (plan cache, worker pool, ordered fold) —
/// once cold (a cache miss that prepares the plan) and once warm (a
/// guaranteed cache hit on the same key) — and both replays are compared
/// bit for bit against the [`SimBatch`] reports the direct pass already
/// computed. The two stacks, and the hit and miss paths, must be
/// indistinguishable on the whole corpus.
///
/// # Errors
///
/// Returns the shrunk [`Divergence`] of the first failing case.
pub fn run_corpus(cases: &[DiffCase]) -> Result<Vec<CaseOutcome>, Box<Divergence>> {
    // One engine for the whole corpus. Corpus workload names are unique
    // (the fuzz seed is part of the name), so within one case the first
    // submission misses and the resubmission below hits.
    let engine = Engine::builder().cache_capacity(16).build();
    let mut outcomes = Vec::with_capacity(cases.len());
    for case in cases {
        match run_case(case) {
            Ok(outcome) => {
                engine_check(case, &engine, outcome.reports.as_deref())?;
                outcomes.push(outcome);
            }
            Err(divergence) => return Err(shrink(case, *divergence)),
        }
    }
    Ok(outcomes)
}

/// Replays a named case through the engine — cold, then warm — and demands
/// bit-for-bit agreement with the direct batch reports `run_case` computed
/// (including agreement on *failing*: if the direct pass produced no
/// aggregate reports, the engine job must error too).
fn engine_check(
    case: &DiffCase,
    engine: &Engine,
    batch_reports: Option<&[SimulationReport]>,
) -> Result<(), Box<Divergence>> {
    let Some(spec) = case.job_spec() else {
        return Ok(());
    };
    let divergence = |field: &str, engine_side: String, batch_side: String| {
        Box::new(Divergence {
            case: case.label.clone(),
            policy: PolicyKind::NoPrefetch,
            iteration: None,
            field: field.to_string(),
            engine: engine_side,
            oracle: batch_side,
            minimized: None,
        })
    };
    match (engine.run(spec.clone()), batch_reports) {
        (Ok(via_engine), Some(via_batch)) => {
            if via_engine != via_batch {
                return Err(divergence(
                    "reports[engine-vs-batch]",
                    format!("{via_engine:?}"),
                    format!("{via_batch:?}"),
                ));
            }
            // Resubmit: same key, so this run is served from the plan
            // cache and must still be bit-identical.
            let handle = match engine.submit(spec) {
                Ok(handle) => handle,
                Err(e) => {
                    return Err(divergence(
                        "error[cache-replay]",
                        e.to_string(),
                        "first submission succeeded".to_string(),
                    ))
                }
            };
            if !handle.was_cache_hit() {
                return Err(divergence(
                    "cache[cache-replay]",
                    "miss".to_string(),
                    "hit expected on resubmission".to_string(),
                ));
            }
            match handle.wait() {
                Ok(warm) if warm == via_engine => Ok(()),
                Ok(warm) => Err(divergence(
                    "reports[cache-replay]",
                    format!("{warm:?}"),
                    format!("{via_engine:?}"),
                )),
                Err(e) => Err(divergence(
                    "error[cache-replay]",
                    e.to_string(),
                    "cold replay succeeded".to_string(),
                )),
            }
        }
        (Err(_), None) => Ok(()),
        (Ok(_), None) => Err(divergence(
            "error[engine-vs-batch]",
            "simulated successfully".to_string(),
            "direct pass produced no aggregate reports".to_string(),
        )),
        (Err(e), Some(_)) => Err(divergence(
            "error[engine-vs-batch]",
            e.to_string(),
            "simulated successfully".to_string(),
        )),
    }
}

/// Shrinks a diverging case to a (locally) minimal counterexample: first the
/// iteration count is cut to the first divergent iteration, then whole
/// tasks, scenarios and trailing subtasks are removed while any divergence
/// persists. Returns the divergence of the minimal case, with its
/// description attached.
pub fn shrink(case: &DiffCase, divergence: Divergence) -> Box<Divergence> {
    let mut current = case.clone();
    let mut last = divergence;

    // Step 1: the outcome of iteration k depends only on its chunk prefix,
    // so k+1 iterations suffice to reproduce a divergence at iteration k.
    if let Some(iteration) = last.iteration {
        let truncated = with_iterations(&current, iteration + 1);
        if let Err(d) = run_case(&truncated) {
            current = truncated;
            last = *d;
        }
    }

    // Step 2: structural shrinking to a fixed point.
    loop {
        let mut advanced = false;
        for candidate in shrink_candidates(&current) {
            if let Err(d) = run_case(&candidate) {
                current = candidate;
                last = *d;
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }

    last.minimized = Some(describe_case(&current));
    Box::new(last)
}

fn with_iterations(case: &DiffCase, iterations: usize) -> DiffCase {
    let mut shrunk = case.clone();
    shrunk.config = shrunk.config.with_iterations(iterations.max(1));
    shrunk
}

/// Every one-step-smaller variant of a case, in preference order: drop a
/// task, drop a scenario, drop the trailing subtask of a scenario graph.
fn shrink_candidates(case: &DiffCase) -> Vec<DiffCase> {
    let mut candidates = Vec::new();
    let tasks = case.task_set.tasks();

    if tasks.len() > 1 {
        for drop in 0..tasks.len() {
            let kept: Vec<Task> = tasks
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != drop)
                .map(|(_, t)| t.clone())
                .collect();
            if let Some(candidate) = rebuild(case, kept) {
                candidates.push(candidate);
            }
        }
    }

    for (which, task) in tasks.iter().enumerate() {
        if task.scenarios().len() > 1 {
            for drop in 0..task.scenarios().len() {
                let kept: Vec<Scenario> = task
                    .scenarios()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != drop)
                    .map(|(_, s)| s.clone())
                    .collect();
                if let Ok(smaller) = Task::new(task.id(), task.name().to_string(), kept) {
                    let mut replaced: Vec<Task> = tasks.to_vec();
                    replaced[which] = smaller;
                    if let Some(candidate) = rebuild(case, replaced) {
                        candidates.push(candidate);
                    }
                }
            }
        }
    }

    for (which, task) in tasks.iter().enumerate() {
        for (scenario_index, scenario) in task.scenarios().iter().enumerate() {
            let Some(smaller_graph) = drop_last_subtask(scenario.graph()) else {
                continue;
            };
            let mut scenarios: Vec<Scenario> = task.scenarios().to_vec();
            scenarios[scenario_index] = Scenario::new(scenario.id(), smaller_graph)
                .with_probability(scenario.probability());
            if let Ok(smaller) = Task::new(task.id(), task.name().to_string(), scenarios) {
                let mut replaced: Vec<Task> = tasks.to_vec();
                replaced[which] = smaller;
                if let Some(candidate) = rebuild(case, replaced) {
                    candidates.push(candidate);
                }
            }
        }
    }

    candidates
}

/// Rebuilds a case around a smaller task list, fixing the correlated
/// combinations up (entries for removed tasks are dropped; combinations
/// naming a removed scenario are dropped wholesale). Returns `None` when the
/// shrink would leave the case invalid (no tasks, or a correlated rule with
/// no combinations).
fn rebuild(case: &DiffCase, tasks: Vec<Task>) -> Option<DiffCase> {
    if tasks.is_empty() {
        return None;
    }
    let task_set = TaskSet::new(case.task_set.name().to_string(), tasks).ok()?;
    let mut config = case.config.clone();
    if let ScenarioPolicy::Correlated(combos) = &case.config.scenario_policy {
        let repaired: Vec<BTreeMap<TaskId, ScenarioId>> = combos
            .iter()
            .filter_map(|combo| {
                let mut repaired = BTreeMap::new();
                for (&task, &scenario) in combo {
                    match task_set.tasks().iter().find(|t| t.id() == task) {
                        // A combination naming a now-removed scenario would
                        // change behaviour, not shrink it: drop the combo.
                        Some(t) => {
                            t.scenario(scenario)?;
                            repaired.insert(task, scenario);
                        }
                        None => continue,
                    }
                }
                Some(repaired)
            })
            .collect();
        if repaired.is_empty() {
            return None;
        }
        config = config.with_scenario_policy(ScenarioPolicy::Correlated(repaired));
    }
    Some(DiffCase {
        label: format!("{} (shrunk)", case.label),
        task_set,
        tiles: case.tiles,
        config,
        // A structurally shrunk task set no longer matches any registry
        // name, so the engine replay is skipped for it.
        workload: None,
    })
}

/// Rebuilds the graph without its highest-id subtask (and the edges touching
/// it); `None` when only one subtask is left.
fn drop_last_subtask(graph: &SubtaskGraph) -> Option<SubtaskGraph> {
    if graph.len() <= 1 {
        return None;
    }
    let last = graph.len() - 1;
    let mut smaller = SubtaskGraph::new(graph.name().to_string());
    for (id, subtask) in graph.iter() {
        if id.index() == last {
            break;
        }
        smaller.add_subtask(subtask.clone());
    }
    for (from, to) in graph.edges() {
        if from.index() == last || to.index() == last {
            continue;
        }
        smaller
            .add_dependency(from, to)
            .expect("subgraph of a DAG stays acyclic");
    }
    Some(smaller)
}

/// Renders a case as a reproducible description: every graph with execution
/// times, configurations, PE classes and edges, plus every knob.
pub fn describe_case(case: &DiffCase) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "tiles={} iterations={} seed={} chunk_size={} replacement={} point_selection={:?}",
        case.tiles,
        case.config.iterations,
        case.config.seed,
        case.config.chunk_size,
        case.config.replacement,
        case.config.point_selection,
    );
    let _ = writeln!(
        out,
        "task_inclusion_probability={}",
        case.config.task_inclusion_probability
    );
    if let ScenarioPolicy::Correlated(combos) = &case.config.scenario_policy {
        let _ = writeln!(out, "correlated combinations: {combos:?}");
    }
    for task in case.task_set.tasks() {
        let _ = writeln!(out, "task {} ({:?}):", task.id(), task.name());
        for scenario in task.scenarios() {
            let _ = writeln!(
                out,
                "  scenario {} (p={}):",
                scenario.id(),
                scenario.probability()
            );
            let graph = scenario.graph();
            for (id, subtask) in graph.iter() {
                let class = match subtask.pe_class() {
                    PeClass::Drhw => "drhw",
                    PeClass::Isp => "isp",
                };
                let _ = writeln!(
                    out,
                    "    {id}: {:?} exec={}us config={} pe={class}",
                    subtask.name(),
                    subtask.exec_time().as_micros(),
                    subtask.config(),
                );
            }
            let edges: Vec<String> = graph
                .edges()
                .map(|(from, to)| format!("{from}->{to}"))
                .collect();
            let _ = writeln!(out, "    edges: {}", edges.join(", "));
        }
    }
    out
}

/// Keeps `describe_case` honest in tests: a described case must mention every
/// subtask of every scenario.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_corpus_is_deterministic_and_diverse() {
        let a = pinned_corpus(24);
        let b = pinned_corpus(24);
        assert_eq!(a.len(), 24);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.task_set, y.task_set);
            assert_eq!(x.config, y.config);
        }
        // All six families appear.
        for family in FuzzFamily::ALL {
            assert!(
                a.iter().any(|c| c.label.contains(family.name())),
                "family {family} missing from the corpus"
            );
        }
        // All three point-selection strategies appear.
        for selection in [
            PointSelection::FullyParallel,
            PointSelection::Fastest,
            PointSelection::EnergyAware,
        ] {
            assert!(a.iter().any(|c| c.config.point_selection == selection));
        }
    }

    #[test]
    fn corpus_env_knob_falls_back_to_the_default() {
        // The variable is not set in unit tests.
        assert_eq!(corpus_cases_from_env(42), 42);
    }

    #[test]
    fn described_cases_mention_every_subtask() {
        let case = &pinned_corpus(1)[0];
        let description = describe_case(case);
        for task in case.task_set.tasks() {
            for scenario in task.scenarios() {
                for (_, subtask) in scenario.graph().iter() {
                    assert!(
                        description.contains(subtask.name()),
                        "missing {}",
                        subtask.name()
                    );
                }
            }
        }
    }

    #[test]
    fn shrinking_drops_tasks_scenarios_and_subtasks() {
        let case = &pinned_corpus(6)[5]; // a mix-family case (multi-scenario)
        let candidates = shrink_candidates(case);
        assert!(!candidates.is_empty());
        let original: usize = case
            .task_set
            .tasks()
            .iter()
            .flat_map(|t| t.scenarios())
            .map(|s| s.graph().len())
            .sum();
        for candidate in &candidates {
            let shrunk: usize = candidate
                .task_set
                .tasks()
                .iter()
                .flat_map(|t| t.scenarios())
                .map(|s| s.graph().len())
                .sum();
            assert!(shrunk < original, "candidates must be strictly smaller");
        }
    }

    #[test]
    fn subtask_dropping_preserves_validity() {
        let case = &pinned_corpus(4)[3];
        let graph = case.task_set.tasks()[0].scenarios()[0].graph();
        let smaller = drop_last_subtask(graph).expect("fuzz graphs have >1 subtask");
        assert_eq!(smaller.len(), graph.len() - 1);
        smaller.validate().expect("shrunk graphs stay valid DAGs");
    }
}
