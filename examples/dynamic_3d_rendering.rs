//! The highly dynamic Pocket GL 3-D rendering application of Figure 7.
//!
//! Runs the six-stage rendering pipeline for a number of frames with the
//! scenario of every stage drawn from the 20 feasible inter-task scenarios,
//! and compares the five prefetch policies on the aggregate reconfiguration
//! overhead, exactly like the paper's Figure 7 experiment (scaled down to a
//! few hundred iterations so it finishes in seconds).
//!
//! Run with: `cargo run -p drhw-examples --bin dynamic_3d_rendering [-- <iterations>]`

use std::error::Error;

use drhw_engine::{Engine, JobSpec};
use drhw_workloads::pocket_gl::{inter_task_scenarios, pocket_gl_task_set, workload_stats};

fn main() -> Result<(), Box<dyn Error>> {
    let iterations: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);

    let set = pocket_gl_task_set();
    let stats = workload_stats();
    println!("Pocket GL application:");
    println!("  tasks            : {}", set.len());
    println!("  subtasks         : {}", stats.subtask_count);
    println!("  scenarios        : {}", stats.scenario_count);
    println!("  inter-task scen. : {}", inter_task_scenarios().len());
    println!(
        "  subtask exec time: {} .. {} (mean {})",
        stats.min, stats.max, stats.mean
    );
    println!();

    // The engine's built-in `pocket_gl` workload carries the 20 feasible
    // inter-task scenarios and the every-frame activation probability, so
    // one job per tile count is the whole experiment.
    let engine = Engine::builder().build();
    println!("Reconfiguration overhead over {iterations} frames (4 ms loads):");
    println!("tiles  no-prefetch  design-time  run-time  run-time+inter  hybrid");
    for tiles in [5usize, 6, 7, 8, 9, 10] {
        let reports = engine.run(
            JobSpec::new("pocket_gl")
                .with_tiles(tiles)
                .with_iterations(iterations),
        )?;
        let overhead: Vec<f64> = reports.iter().map(|r| r.overhead_percent()).collect();
        println!(
            "{:>5}  {:>10.1}%  {:>10.1}%  {:>7.1}%  {:>13.1}%  {:>5.1}%",
            tiles, overhead[0], overhead[1], overhead[2], overhead[3], overhead[4],
        );
    }
    println!();
    println!("The hybrid heuristic should track run-time+inter-task closely and remove");
    println!("most of the no-prefetch overhead, as in Figure 7 of the paper.");
    Ok(())
}
