//! The highly dynamic Pocket GL 3-D rendering application of Figure 7.
//!
//! Runs the six-stage rendering pipeline for a number of frames with the
//! scenario of every stage drawn from the 20 feasible inter-task scenarios,
//! and compares the five prefetch policies on the aggregate reconfiguration
//! overhead, exactly like the paper's Figure 7 experiment (scaled down to a
//! few hundred iterations so it finishes in seconds).
//!
//! Run with: `cargo run -p drhw-examples --bin dynamic_3d_rendering [-- <iterations>]`

use std::collections::BTreeMap;
use std::error::Error;

use drhw_model::{Platform, ScenarioId, TaskId};
use drhw_prefetch::PolicyKind;
use drhw_sim::{DynamicSimulation, ScenarioPolicy, SimulationConfig};
use drhw_workloads::pocket_gl::{
    inter_task_scenarios, pocket_gl_task_set, workload_stats, TASK_COUNT,
};

fn main() -> Result<(), Box<dyn Error>> {
    let iterations: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);

    let set = pocket_gl_task_set();
    let stats = workload_stats();
    println!("Pocket GL application:");
    println!("  tasks            : {}", set.len());
    println!("  subtasks         : {}", stats.subtask_count);
    println!("  scenarios        : {}", stats.scenario_count);
    println!("  inter-task scen. : {}", inter_task_scenarios().len());
    println!(
        "  subtask exec time: {} .. {} (mean {})",
        stats.min, stats.max, stats.mean
    );
    println!();

    // Convert the feasible inter-task scenarios into the correlated scenario
    // maps the simulator consumes.
    let combos: Vec<BTreeMap<TaskId, ScenarioId>> = inter_task_scenarios()
        .into_iter()
        .map(|combo| {
            (0..TASK_COUNT)
                .map(|t| (TaskId::new(10 + t), ScenarioId::new(combo.scenarios[t])))
                .collect()
        })
        .collect();

    println!("Reconfiguration overhead over {iterations} frames (4 ms loads):");
    println!("tiles  no-prefetch  design-time  run-time  run-time+inter  hybrid");
    for tiles in [5usize, 6, 7, 8, 9, 10] {
        let platform = Platform::virtex_like(tiles)?;
        let config = SimulationConfig {
            task_inclusion_probability: 1.0,
            ..SimulationConfig::default()
                .with_iterations(iterations)
                .with_scenario_policy(ScenarioPolicy::Correlated(combos.clone()))
        };
        let sim = DynamicSimulation::new(&set, &platform, config)?;
        let overhead = |policy: PolicyKind| -> Result<f64, Box<dyn Error>> {
            Ok(sim.run(policy)?.overhead_percent())
        };
        println!(
            "{:>5}  {:>10.1}%  {:>10.1}%  {:>7.1}%  {:>13.1}%  {:>5.1}%",
            tiles,
            overhead(PolicyKind::NoPrefetch)?,
            overhead(PolicyKind::DesignTimeOnly)?,
            overhead(PolicyKind::RunTime)?,
            overhead(PolicyKind::RunTimeInterTask)?,
            overhead(PolicyKind::Hybrid)?,
        );
    }
    println!();
    println!("The hybrid heuristic should track run-time+inter-task closely and remove");
    println!("most of the no-prefetch overhead, as in Figure 7 of the paper.");
    Ok(())
}
