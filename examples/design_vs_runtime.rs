//! Design-time versus run-time: where the hybrid heuristic spends its effort.
//!
//! For every multimedia benchmark this example runs the design-time phase
//! (critical-subtask selection with branch & bound), reports the critical
//! fraction and the number of `compute_penalty` iterations, and then measures
//! how long the run-time phase of the hybrid heuristic takes compared to
//! re-running the full list-scheduling heuristic — the scalability argument of
//! §4 in miniature.
//!
//! Run with: `cargo run -p drhw-examples --bin design_vs_runtime`

use std::collections::BTreeSet;
use std::error::Error;
use std::time::Instant;

use drhw_model::Platform;
use drhw_prefetch::{
    HybridPrefetch, InterTaskWindow, ListScheduler, PrefetchProblem, PrefetchScheduler,
};
use drhw_workloads::multimedia::{
    fully_parallel_schedule, jpeg_decoder_graph, mpeg_encoder_graph, parallel_jpeg_graph,
    pattern_recognition_graph, MpegFrame,
};
use drhw_workloads::random::{seeded_random_graph, RandomGraphConfig};

fn main() -> Result<(), Box<dyn Error>> {
    let platform = Platform::virtex_like(16)?;

    println!("Design-time phase on the multimedia benchmarks:");
    println!("graph                  |CS|  critical %  iterations  stored penalty");
    for graph in [
        pattern_recognition_graph(),
        jpeg_decoder_graph(),
        parallel_jpeg_graph(),
        mpeg_encoder_graph(MpegFrame::B),
    ] {
        let schedule = fully_parallel_schedule(&graph)?;
        let hybrid = HybridPrefetch::compute(&graph, &schedule, &platform)?;
        let cs = hybrid.critical();
        println!(
            "{:<22} {:>4}  {:>9.0}%  {:>10}  {}",
            graph.name(),
            cs.len(),
            cs.critical_fraction() * 100.0,
            cs.iterations(),
            cs.stored_penalty()
        );
    }
    println!();

    // Scalability: run-time list scheduling versus the hybrid run-time phase
    // on increasingly large random graphs.
    println!("Run-time cost, list scheduler vs hybrid run-time phase (wall clock):");
    println!("subtasks  list scheduler  hybrid run-time phase");
    let big_platform = Platform::virtex_like(512)?;
    for &n in &[16usize, 64, 256] {
        let graph = seeded_random_graph(&RandomGraphConfig::with_subtasks(n), 11);
        let schedule = drhw_model::InitialSchedule::fully_parallel(&graph)?;
        // Design time happens offline; its cost is not part of the comparison.
        let hybrid =
            HybridPrefetch::compute_with(&graph, &schedule, &big_platform, &ListScheduler::new())?;

        let repetitions = 50u32;
        let start = Instant::now();
        for _ in 0..repetitions {
            let problem = PrefetchProblem::new(&graph, &schedule, &big_platform)?;
            ListScheduler::new().schedule(&problem)?;
        }
        let list_time = start.elapsed() / repetitions;

        let resident: BTreeSet<_> = graph.ids().take(n / 4).collect();
        let start = Instant::now();
        for _ in 0..repetitions {
            hybrid.runtime_decision(
                &graph,
                &schedule,
                &big_platform,
                &resident,
                InterTaskWindow::empty(),
            )?;
        }
        let hybrid_time = start.elapsed() / repetitions;

        println!("{n:>8}  {list_time:>14.2?}  {hybrid_time:>21.2?}");
    }
    println!();
    println!("The list scheduler's cost grows with the graph size, while the hybrid");
    println!("run-time phase only performs set membership tests — the reason the paper");
    println!("moves every computation-intensive part to design time.");

    // The same amortisation one layer up: the engine's plan cache moves the
    // whole design-time phase out of repeat jobs. Submit the same workload
    // twice (fresh seed, so the simulated work is new) and compare.
    let engine = drhw_engine::Engine::builder().build();
    let spec = drhw_engine::JobSpec::new("multimedia")
        .with_tiles(8)
        .with_iterations(50);
    let start = Instant::now();
    engine.run(spec.clone().with_seed(1))?;
    let cold = start.elapsed();
    let start = Instant::now();
    engine.run(spec.with_seed(2))?;
    let warm = start.elapsed();
    println!();
    println!("Engine plan cache on repeat jobs (multimedia, 8 tiles, 50 iterations):");
    println!("  cold submission (prepares the plan): {cold:>10.2?}");
    println!("  warm submission (cache hit)        : {warm:>10.2?}");
    Ok(())
}
