//! Runnable examples for the DRHW hybrid prefetch reproduction.
//!
//! Each example is a standalone binary exercising the public API:
//!
//! * `quickstart` — the Fig. 3 / Fig. 5 worked example;
//! * `jpeg_pipeline` — the JPEG decoders through the full Fig. 2 flow;
//! * `dynamic_3d_rendering` — the Pocket GL application swept over tile counts;
//! * `design_vs_runtime` — critical-subtask statistics and run-time cost.
