//! Runnable examples for the DRHW hybrid prefetch reproduction.
//!
//! Each example is a standalone binary exercising the public API:
//!
//! * `quickstart` — one `drhw-engine` job comparing all five policies;
//! * `fig3_walkthrough` — the Fig. 3 / Fig. 5 worked example, step by step;
//! * `jpeg_pipeline` — the JPEG decoders through the full Fig. 2 flow, then
//!   end to end through the engine;
//! * `dynamic_3d_rendering` — the Pocket GL application swept over tile
//!   counts via engine jobs;
//! * `design_vs_runtime` — critical-subtask statistics, run-time cost, and
//!   the engine plan cache's cold/warm amortisation.
