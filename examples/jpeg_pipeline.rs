//! JPEG pipeline walkthrough: the sequential and parallel JPEG decoders of
//! Table 1 scheduled with each prefetch policy.
//!
//! Shows the full per-task flow of Fig. 2: the TCM design-time scheduler
//! produces a Pareto curve, the reuse module checks the tile contents, the
//! prefetch module schedules the loads, and the replacement module maps the
//! abstract slots onto physical tiles.
//!
//! Run with: `cargo run -p drhw-examples --bin jpeg_pipeline`

use std::collections::BTreeSet;
use std::error::Error;

use drhw_model::{Platform, Time};
use drhw_prefetch::{
    apply_schedule_to_contents, assign_tiles, reusable_subtasks, BranchBoundScheduler,
    HybridPrefetch, InterTaskWindow, ListScheduler, OnDemandScheduler, PrefetchProblem,
    PrefetchScheduler, ReplacementPolicy, TileContents,
};
use drhw_tcm::DesignTimeScheduler;
use drhw_workloads::multimedia::{
    fully_parallel_schedule, jpeg_decoder_graph, parallel_jpeg_graph,
};

fn main() -> Result<(), Box<dyn Error>> {
    let platform = Platform::virtex_like(8)?;

    for graph in [jpeg_decoder_graph(), parallel_jpeg_graph()] {
        println!("==== {} ====", graph.name());

        // The TCM design-time scheduler explores the tile-allocation space.
        let curve = DesignTimeScheduler::new().pareto_curve(&graph, &platform)?;
        println!("Pareto curve ({} points):", curve.len());
        for point in curve.points() {
            println!(
                "  {} tiles -> exec {}  energy {:.1} mJ",
                point.tiles_used(),
                point.exec_time(),
                point.energy_mj()
            );
        }

        // For the prefetch study we use the ICN-style fully parallel mapping.
        let schedule = fully_parallel_schedule(&graph)?;
        let ideal = schedule.ideal_timing(&graph)?.makespan();
        let problem = PrefetchProblem::new(&graph, &schedule, &platform)?;
        println!("ideal execution time: {ideal}");

        for (name, result) in [
            ("no prefetch", OnDemandScheduler::new().schedule(&problem)?),
            (
                "run-time list prefetch",
                ListScheduler::new().schedule(&problem)?,
            ),
            (
                "optimal (branch & bound)",
                BranchBoundScheduler::new().schedule(&problem)?,
            ),
        ] {
            println!(
                "  {name:<26} penalty {:>6}  (+{:.1}%)",
                result.penalty(),
                result.overhead_ratio() * 100.0
            );
        }

        // The hybrid heuristic across two consecutive frames: the first frame
        // is a cold start, the second one reuses whatever stayed on the tiles.
        let hybrid = HybridPrefetch::compute(&graph, &schedule, &platform)?;
        let mut contents = TileContents::new(platform.tile_count());
        let mut window = InterTaskWindow::empty();
        for frame in 1..=2 {
            let mapping =
                assign_tiles(&graph, &schedule, &contents, ReplacementPolicy::ReuseAware)?;
            let resident = reusable_subtasks(&graph, &schedule, &mapping, &contents);
            let outcome = hybrid.evaluate(&graph, &schedule, &platform, &resident, window)?;
            println!(
                "  hybrid, frame {frame}: {} subtasks reused, {} loads, penalty {} (+{:.1}%)",
                resident.len(),
                outcome.loads_performed(),
                outcome.penalty(),
                outcome.overhead_ratio() * 100.0
            );
            window = outcome.trailing_window();
            apply_schedule_to_contents(
                &graph,
                &schedule,
                &mapping,
                &mut contents,
                Time::from_millis(200 * frame),
            );
        }

        // Sanity: with every configuration resident the penalty vanishes.
        let all_resident: BTreeSet<_> = graph.ids().collect();
        let warm = hybrid.evaluate(&graph, &schedule, &platform, &all_resident, window)?;
        println!("  hybrid, fully resident: penalty {}\n", warm.penalty());
    }

    // The same decoders inside the full multimedia workload, end to end
    // through the job engine: many randomised iterations instead of the
    // hand-stepped frames above.
    let engine = drhw_engine::Engine::builder().build();
    let reports = engine.run(
        drhw_engine::JobSpec::new("multimedia")
            .with_tiles(8)
            .with_iterations(200),
    )?;
    println!("multimedia workload through the engine (8 tiles, 200 iterations):");
    for report in &reports {
        println!(
            "  {:<22} overhead {:>5.1}%",
            report.policy().to_string(),
            report.overhead_percent()
        );
    }
    Ok(())
}
