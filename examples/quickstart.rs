//! Quickstart: one engine, one job, all five prefetch policies compared.
//!
//! Run with: `cargo run -p drhw-examples --bin quickstart`

use drhw_engine::{Engine, EngineError, JobSpec};

fn main() -> Result<(), EngineError> {
    let engine = Engine::builder().build();
    let spec = JobSpec::new("multimedia")
        .with_tiles(8)
        .with_iterations(200);
    println!("policy                  overhead   reuse");
    for report in engine.run(spec)? {
        println!(
            "{:<22} {:>7.1}%  {:>5.1}%",
            report.policy().to_string(),
            report.overhead_percent(),
            report.reuse_percent(),
        );
    }
    Ok(())
}
