//! Quickstart: the Fig. 3 / Fig. 5 worked example of the paper.
//!
//! Builds the four-subtask graph, shows what happens without prefetch, with
//! the run-time prefetch heuristic, and with the hybrid heuristic (critical
//! subtasks, initialization phase, inter-task window), printing the Gantt
//! charts of each schedule.
//!
//! Run with: `cargo run -p drhw-examples --bin fig3_walkthrough`

use std::collections::BTreeSet;
use std::error::Error;

use drhw_model::{
    ConfigId, InitialSchedule, PeAssignment, Platform, Subtask, SubtaskGraph, TileSlot, Time,
};
use drhw_prefetch::{
    HybridPrefetch, InterTaskWindow, ListScheduler, OnDemandScheduler, PrefetchProblem,
    PrefetchScheduler,
};

fn main() -> Result<(), Box<dyn Error>> {
    // The subtask graph of Fig. 3: 1 -> {2, 3}, 3 -> 4, mapped on three tiles
    // (subtask 4 shares its tile with subtask 1).
    let mut graph = SubtaskGraph::new("fig3");
    let s1 = graph.add_subtask(Subtask::new("1", Time::from_millis(10), ConfigId::new(1)));
    let s2 = graph.add_subtask(Subtask::new("2", Time::from_millis(12), ConfigId::new(2)));
    let s3 = graph.add_subtask(Subtask::new("3", Time::from_millis(6), ConfigId::new(3)));
    let s4 = graph.add_subtask(Subtask::new("4", Time::from_millis(8), ConfigId::new(4)));
    graph.add_dependency(s1, s2)?;
    graph.add_dependency(s1, s3)?;
    graph.add_dependency(s3, s4)?;

    let schedule = InitialSchedule::from_assignment(
        &graph,
        vec![
            PeAssignment::Tile(TileSlot::new(0)),
            PeAssignment::Tile(TileSlot::new(1)),
            PeAssignment::Tile(TileSlot::new(2)),
            PeAssignment::Tile(TileSlot::new(0)),
        ],
    )?;
    let platform = Platform::virtex_like(3)?;
    let ideal = schedule.ideal_timing(&graph)?;
    println!("== Ideal schedule (no reconfiguration overhead), Fig. 3(a) ==");
    println!("{}\n", ideal.to_gantt_string(&graph));

    // Without prefetch every load sits on the critical path (Fig. 3(b)).
    let problem = PrefetchProblem::new(&graph, &schedule, &platform)?;
    let on_demand = OnDemandScheduler::new().schedule(&problem)?;
    println!(
        "== Without prefetch, Fig. 3(b): penalty {} ==",
        on_demand.penalty()
    );
    println!("{}\n", on_demand.timed().to_gantt_string(&graph));

    // The run-time list-scheduling heuristic hides all but the first load
    // (Fig. 3(c)).
    let run_time = ListScheduler::new().schedule(&problem)?;
    println!(
        "== Run-time prefetch, Fig. 3(c): penalty {} ==",
        run_time.penalty()
    );
    println!("{}\n", run_time.timed().to_gantt_string(&graph));

    // The hybrid heuristic: the design-time phase finds the critical subtasks
    // and stores a zero-penalty schedule for everything else.
    let hybrid = HybridPrefetch::compute(&graph, &schedule, &platform)?;
    let critical: Vec<&str> = hybrid
        .critical()
        .critical_subtasks()
        .iter()
        .map(|&id| graph.subtask(id).name())
        .collect();
    println!("== Hybrid heuristic ==");
    println!("critical subtasks (CS): {critical:?}");
    println!(
        "stored load order     : {:?}",
        hybrid.critical().stored_load_order()
    );

    // Cold start: nothing resident, no idle window — the task pays only the
    // initialization phase (loading subtask 1).
    let cold = hybrid.evaluate(
        &graph,
        &schedule,
        &platform,
        &BTreeSet::new(),
        InterTaskWindow::empty(),
    )?;
    println!("cold start            : penalty {}", cold.penalty());

    // With the inter-task optimization the previous task's idle window loads
    // subtask 1 in advance (Fig. 5(b)) and the penalty disappears.
    let warm = hybrid.evaluate(
        &graph,
        &schedule,
        &platform,
        &BTreeSet::new(),
        InterTaskWindow::new(Time::from_millis(6)),
    )?;
    println!("with inter-task window: penalty {}", warm.penalty());
    println!(
        "trailing idle window offered to the next task: {}",
        warm.trailing_window().remaining()
    );
    Ok(())
}
