//! Offline stub of the `criterion` benchmarking API used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate implements
//! the subset the `drhw-bench` benches call — benchmark groups,
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with a simple measurement loop: each closure
//! is warmed up once, then timed over a fixed number of iterations, and the
//! mean wall-clock time per iteration is printed. No statistics, plots, or
//! baselines; the point is that `cargo bench` compiles, runs, and reports
//! comparable numbers offline.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone (the group name provides context).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Runs and times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iterations: u32,
}

impl Bencher {
    /// Calls `body` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        black_box(body()); // warm-up, and keeps the result observable
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(body());
        }
        let elapsed = start.elapsed();
        let per_iter = elapsed / self.iterations;
        println!(
            "    {per_iter:>12.2?}/iter over {} iterations",
            self.iterations
        );
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    iterations: u32,
}

impl BenchmarkGroup {
    /// Runs `body` once with a [`Bencher`] and the given input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut body: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("  {}/{}", self.name, id);
        let mut bencher = Bencher {
            iterations: self.iterations,
        };
        body(&mut bencher, input);
    }

    /// Runs `body` once with a [`Bencher`].
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut body: F)
    where
        F: FnMut(&mut Bencher),
    {
        println!("  {}/{}", self.name, id);
        let mut bencher = Bencher {
            iterations: self.iterations,
        };
        body(&mut bencher);
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Entry point handed to every benchmark function.
#[derive(Debug)]
pub struct Criterion {
    iterations: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        // A fixed, modest iteration count: enough for a stable mean on the
        // microsecond-scale bodies in this workspace, small enough that the
        // full bench suite stays in the seconds range.
        Criterion { iterations: 20 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            iterations: self.iterations,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F)
    where
        F: FnMut(&mut Bencher),
    {
        println!("  {name}");
        let mut bencher = Bencher {
            iterations: self.iterations,
        };
        body(&mut bencher);
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}
