//! Offline stub of the `serde` facade.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the minimal surface the workspace actually uses: the [`Serialize`] and
//! [`Deserialize`] marker traits and the `#[derive(Serialize, Deserialize)]`
//! macros (re-exported from the sibling `serde_derive` stub). No format
//! backend (`serde_json`, …) exists here, so the traits carry no methods —
//! deriving them records serialisability as a compile-time capability without
//! generating any runtime code.
//!
//! Swapping in the real `serde` later is a one-line manifest change per crate;
//! no source file needs to change.

#![warn(missing_docs)]

/// Marker for types whose values can be serialised.
///
/// The real trait's `serialize` method is omitted because no serialiser
/// backend is vendored; the derive macro emits an empty impl.
pub trait Serialize {}

/// Marker for types whose values can be deserialised.
///
/// The lifetime parameter mirrors the real trait so that `#[derive]` output
/// and any future hand-written bounds stay source-compatible.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_markers!(
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String,
    ()
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeSet<T> {}
