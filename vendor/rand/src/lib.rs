//! Offline stub of the `rand` API surface used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements exactly what the workspace calls: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges, [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`], all on top of a [`rngs::StdRng`] driven by
//! the SplitMix64 generator. Determinism is the only contract the workspace
//! relies on (seeded graphs must be reproducible), and SplitMix64 easily
//! clears the statistical bar for layered-DAG generation and policy sampling.
//!
//! The stream of values differs from the real `rand::rngs::StdRng` (ChaCha12),
//! so swapping the real crate back in will change *which* random graphs a seed
//! produces — but every property the tests assert holds for any stream.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: the only method generators must provide.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Equal seeds yield equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample from empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample from empty range");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*
    };
}

impl_sample_range!(u16, u32, u64, usize);

/// Types [`Rng::gen`] can produce from the standard distribution.
pub trait StandardSample {
    /// Draws one value from the standard distribution for the type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)`, from 53 random mantissa bits.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing randomness methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniformly distributed value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws a value from the standard distribution (`[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
        // 53 random mantissa bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64 (Steele, Lea, Flood;
    /// the seeding generator recommended for xoshiro). Not cryptographic —
    /// neither is the use.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension trait adding random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes_are_exact() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
