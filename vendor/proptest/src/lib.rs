//! Offline stub of the `proptest` surface used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate provides a
//! deterministic re-implementation of what `tests/properties.rs` relies on:
//! the [`proptest!`] macro over `arg in range` bindings, integer-range
//! strategies, [`prop_assert!`] / [`prop_assert_eq!`], and
//! [`prelude::ProptestConfig::with_cases`]. Each test runs its configured
//! number of cases with inputs drawn from a SplitMix64 stream seeded from the
//! test's module path and case index, so failures reproduce exactly across
//! runs and machines.
//!
//! Unsupported (not needed here): shrinking, `prop_oneof!`, collection and
//! composite strategies, persisted failure files.

#![warn(missing_docs)]

/// Deterministic random source for drawing test cases.
pub mod test_runner {
    /// SplitMix64 stream seeded from the test name and case index.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the generator for one test case. The `name` (usually
        /// `module_path!()::test_fn`) decorrelates different tests that run
        /// the same case indices.
        pub fn new(name: &str, case: u64) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Returns the next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Value-generation strategies. Only integer ranges are implemented.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of values for one `proptest!` argument.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;
                    fn sample(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "cannot sample from empty range");
                        let span = (self.end - self.start) as u64;
                        self.start + (rng.next_u64() % span) as $t
                    }
                }
                impl Strategy for RangeInclusive<$t> {
                    type Value = $t;
                    fn sample(&self, rng: &mut TestRng) -> $t {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "cannot sample from empty range");
                        let span = (end - start) as u64;
                        if span == u64::MAX {
                            return rng.next_u64() as $t;
                        }
                        start + (rng.next_u64() % (span + 1)) as $t
                    }
                }
            )*
        };
    }

    impl_range_strategy!(u16, u32, u64, usize, i32, i64);
}

/// The subset of `proptest::prelude` the workspace imports.
pub mod prelude {
    /// Per-test configuration; only the case count is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body for every sampled case.
#[macro_export]
macro_rules! proptest {
    (
        $(#![proptest_config($cfg:expr)])?
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        #[allow(unused)]
        fn __proptest_cases() -> u32 {
            let cfg = $crate::prelude::ProptestConfig::default();
            $(let cfg = $cfg;)?
            cfg.cases
        }

        $(
            $(#[$meta])*
            fn $name() {
                let __name = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..u64::from(__proptest_cases()) {
                    let mut __rng = $crate::test_runner::TestRng::new(__name, __case);
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )+
                    // Echo the sampled inputs on failure — without shrinking,
                    // the concrete case is the only reproduction handle.
                    let __result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(__err) = __result {
                        eprintln!("{}: case {} failed with inputs:", __name, __case);
                        $(
                            eprintln!("    {} = {:?}", stringify!($arg), $arg);
                        )+
                        ::std::panic::resume_unwind(__err);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property; panics with the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
