//! Offline stub of `serde_derive`.
//!
//! Emits empty `impl serde::Serialize` / `impl serde::Deserialize` blocks for
//! the derived type (the stub traits carry no methods). The input stream is
//! parsed by hand — `syn`/`quote` are not available offline — which is enough
//! because every derived type in this workspace is a plain, non-generic
//! struct or enum. `#[serde(...)]` helper attributes (e.g. `transparent`) are
//! accepted and ignored.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name: the first identifier following the `struct` or
/// `enum` keyword at the top level of the item.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        if let Some(TokenTree::Punct(p)) = tokens.next() {
                            if p.as_char() == '<' {
                                panic!(
                                    "serde_derive stub: generic type `{name}` is not supported; \
                                     add a manual impl or extend the stub"
                                );
                            }
                        }
                        return name.to_string();
                    }
                    other => {
                        panic!("serde_derive stub: expected type name after `{kw}`, got {other:?}")
                    }
                }
            }
        }
    }
    panic!("serde_derive stub: no `struct` or `enum` keyword found in derive input");
}

/// Stub `#[derive(Serialize)]`: emits `impl serde::Serialize for T {}`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

/// Stub `#[derive(Deserialize)]`: emits `impl serde::Deserialize for T {}`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
